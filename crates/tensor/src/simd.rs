//! Explicit SIMD kernel layer with a scalar reference implementation.
//!
//! Every hot inner loop in the workspace — the fused-`axpy` matmul
//! microkernel, the squared-L2 scans behind brute-force/LSH kNN, and the
//! per-cell point-distance rows of the classical trajectory measures —
//! dispatches through this module. Three backends exist:
//!
//! * **scalar** — pure Rust, the *reference implementation*. Every other
//!   backend must produce bitwise-identical results (enforced by the
//!   proptests in `tests/simd_kernels.rs`).
//! * **sse2** — stable `core::arch::x86_64` 128-bit kernels (SSE2 is part
//!   of the x86_64 baseline, so this backend is always available there).
//! * **avx2** — 256-bit kernels behind runtime feature detection.
//! * **avx512** — 512-bit kernels behind runtime feature detection
//!   (requires AVX-512 F + DQ; the canonical 32-lane reduction collapses
//!   to two zmm accumulators, so the tree's first level is a single
//!   vector add).
//! * **neon** — `core::arch::aarch64` 128-bit kernels (baseline on
//!   aarch64).
//!
//! # Determinism: the fixed reduction tree
//!
//! Element-wise kernels (`axpy*`, the f64 distance rows) are trivially
//! lane-order-invariant: lane *j* computes exactly the scalar expression
//! for element *j*, in the same operation order, so SIMD width cannot
//! change a single bit. No FMA is ever used — fusing `a*b + c` into one
//! rounding would diverge from the scalar `mul` + `add`.
//!
//! Horizontal reductions ([`dot_f32`], [`sq_dist_f32`]) are where naive
//! SIMD breaks determinism, so the reduction shape is **fixed by
//! definition** and the scalar reference implements the same shape:
//!
//! 1. 32 strided accumulators: `acc[l] = Σ x[32·i + l] · y[32·i + l]`,
//!    accumulated in ascending `i`. Lane `l` of every backend holds
//!    exactly `acc[l]` (SSE2/NEON use eight 4-lane registers, AVX2 four
//!    8-lane registers, AVX-512 two 16-lane registers — the *values* are
//!    identical, only the register packing differs).
//! 2. A fixed five-level combine tree:
//!    `t[k] = acc[k] + acc[k+16]`, `u[k] = t[k] + t[k+8]`,
//!    `v[k] = u[k] + u[k+4]`, and finally
//!    `(v[0] + v[2]) + (v[1] + v[3])`. Each level maps onto one vector
//!    add (or a 128-bit extract + add) on every backend.
//! 3. The `len % 32` tail is added serially, in ascending index order,
//!    *after* the tree.
//!
//! Because each accumulator is an exact FP sequence and the combine tree
//! is a fixed dataflow DAG, the result is a pure function of the input —
//! independent of backend, thread count, or build profile. Inputs with
//! NaN are outside the contract of the `min`-based kernels (the DP
//! recurrences never produce NaN); see `DESIGN.md` §12 for the policy on
//! a possible future non-deterministic "fast-math" tier (none exists
//! today — every shipped kernel is bitwise-reproducible).
//!
//! # Dispatch
//!
//! The active backend is resolved once, from the `T2VEC_SIMD` env var
//! (`off`/`scalar`, `sse`, `avx2`, `avx512`, `neon`) or by CPU feature
//! detection,
//! and cached in an atomic. A forced backend the CPU cannot run falls
//! back to `scalar` with a warning — forcing is a determinism/debugging
//! tool, so the fallback is the reference tier, not "next best". Benches
//! and tests may switch the backend at runtime via [`set_backend`], or
//! bypass the global entirely with the `*_on` kernel variants.

use std::sync::atomic::{AtomicU8, Ordering};
use t2vec_obs as obs;

/// A SIMD dispatch target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Backend {
    /// Pure-Rust reference kernels (also the `T2VEC_SIMD=off` tier).
    Scalar = 0,
    /// 128-bit `core::arch::x86_64` kernels (x86_64 baseline).
    Sse2 = 1,
    /// 256-bit `core::arch::x86_64` kernels (runtime-detected).
    Avx2 = 2,
    /// 128-bit `core::arch::aarch64` kernels (aarch64 baseline).
    Neon = 3,
    /// 512-bit `core::arch::x86_64` kernels (runtime-detected; needs
    /// AVX-512 F and DQ).
    Avx512 = 4,
}

impl Backend {
    /// Stable lower-case name (used in metrics and bench reports).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Sse2 => "sse2",
            Backend::Avx2 => "avx2",
            Backend::Neon => "neon",
            Backend::Avx512 => "avx512",
        }
    }

    /// Parses a `T2VEC_SIMD` value. `off` and `scalar` are synonyms.
    pub fn parse(s: &str) -> Option<Backend> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "scalar" => Some(Backend::Scalar),
            "sse" | "sse2" => Some(Backend::Sse2),
            "avx2" => Some(Backend::Avx2),
            "avx512" | "avx512f" => Some(Backend::Avx512),
            "neon" => Some(Backend::Neon),
            _ => None,
        }
    }

    /// `true` when this CPU can execute the backend's kernels.
    pub fn supported(self) -> bool {
        match self {
            Backend::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Backend::Sse2 => true, // part of the x86_64 baseline
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "x86_64")]
            Backend::Avx512 => {
                std::arch::is_x86_feature_detected!("avx512f")
                    && std::arch::is_x86_feature_detected!("avx512dq")
            }
            #[cfg(target_arch = "aarch64")]
            Backend::Neon => true, // part of the aarch64 baseline
            #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
            _ => false,
            #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
            _ => false,
        }
    }

    fn from_u8(v: u8) -> Backend {
        match v {
            1 => Backend::Sse2,
            2 => Backend::Avx2,
            3 => Backend::Neon,
            4 => Backend::Avx512,
            _ => Backend::Scalar,
        }
    }
}

/// The widest backend this CPU supports (ignoring `T2VEC_SIMD`).
pub fn detected() -> Backend {
    if Backend::Avx512.supported() {
        Backend::Avx512
    } else if Backend::Avx2.supported() {
        Backend::Avx2
    } else if Backend::Neon.supported() {
        Backend::Neon
    } else if Backend::Sse2.supported() {
        Backend::Sse2
    } else {
        Backend::Scalar
    }
}

const UNRESOLVED: u8 = u8::MAX;
static ACTIVE: AtomicU8 = AtomicU8::new(UNRESOLVED);

fn resolve() -> Backend {
    let chosen = match std::env::var("T2VEC_SIMD") {
        Ok(v) => match Backend::parse(&v) {
            Some(b) if b.supported() => b,
            Some(b) => {
                obs::warn!(target: "tensor.simd",
                    "T2VEC_SIMD={} not supported on this CPU; falling back to scalar",
                    b.name());
                Backend::Scalar
            }
            None => {
                obs::warn!(target: "tensor.simd",
                    "unrecognised T2VEC_SIMD value {v:?} (off|sse|avx2|avx512|neon); auto-detecting");
                detected()
            }
        },
        Err(_) => detected(),
    };
    ACTIVE.store(chosen as u8, Ordering::Relaxed);
    chosen
}

/// The active backend every dispatching kernel uses.
///
/// Resolved on first call from `T2VEC_SIMD` or CPU detection, then
/// cached; [`set_backend`] overrides it at runtime.
#[inline]
pub fn backend() -> Backend {
    match ACTIVE.load(Ordering::Relaxed) {
        UNRESOLVED => resolve(),
        v => Backend::from_u8(v),
    }
}

/// Forces the active backend (bench/test hook). Returns `false` — and
/// leaves the active backend unchanged — when the CPU cannot run `b`.
pub fn set_backend(b: Backend) -> bool {
    if !b.supported() {
        return false;
    }
    ACTIVE.store(b as u8, Ordering::Relaxed);
    true
}

/// Discards the cached backend and re-resolves from `T2VEC_SIMD` / CPU
/// detection (test/bench hook — normal code resolves once per process).
pub fn refresh_from_env() -> Backend {
    resolve()
}

/// Increments the per-backend dispatch counter
/// (`simd.dispatch.{scalar,sse2,avx2,avx512,neon}`). Called once per
/// coarse-grained kernel entry (a matmul, a kNN scan, a DP fill) — not
/// per row — so benches and tests can attest which backend actually ran
/// without putting an atomic increment in the hot loop.
#[inline]
pub fn record_dispatch() {
    match backend() {
        Backend::Scalar => obs::counter!("simd.dispatch.scalar").incr(),
        Backend::Sse2 => obs::counter!("simd.dispatch.sse2").incr(),
        Backend::Avx2 => obs::counter!("simd.dispatch.avx2").incr(),
        Backend::Neon => obs::counter!("simd.dispatch.neon").incr(),
        Backend::Avx512 => obs::counter!("simd.dispatch.avx512").incr(),
    }
}

// ---------------------------------------------------------------------
// Dispatching wrappers (global backend) and `_on` variants (explicit
// backend — the parallel-test-safe hook used by the bitwise proptests).
// ---------------------------------------------------------------------

/// Dot product with the fixed 32-accumulator reduction tree (see the
/// module docs). Bitwise-identical across backends.
///
/// # Panics
/// Debug-asserts equal lengths; in release the shorter slice governs.
#[inline]
pub fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
    dot_f32_on(backend(), a, b)
}

/// [`dot_f32`] on an explicit backend.
///
/// # Panics
/// Panics if `b` is not supported on this CPU.
pub fn dot_f32_on(be: Backend, a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dot length mismatch");
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    match check(be) {
        Backend::Scalar => scalar::dot(a, b),
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => unsafe { x86::dot_sse2(a, b) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { x86::dot_avx2(a, b) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 => unsafe { x86::dot_avx512(a, b) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => unsafe { neon::dot_neon(a, b) },
        #[allow(unreachable_patterns)]
        _ => scalar::dot(a, b),
    }
}

/// Squared Euclidean distance with the fixed 32-accumulator reduction
/// tree. Bitwise-identical across backends.
///
/// # Panics
/// Debug-asserts equal lengths; in release the shorter slice governs.
#[inline]
pub fn sq_dist_f32(a: &[f32], b: &[f32]) -> f32 {
    sq_dist_f32_on(backend(), a, b)
}

/// [`sq_dist_f32`] on an explicit backend.
///
/// # Panics
/// Panics if `b` is not supported on this CPU.
pub fn sq_dist_f32_on(be: Backend, a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "sq_dist length mismatch");
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    match check(be) {
        Backend::Scalar => scalar::sq_dist(a, b),
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => unsafe { x86::sq_dist_sse2(a, b) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { x86::sq_dist_avx2(a, b) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 => unsafe { x86::sq_dist_avx512(a, b) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => unsafe { neon::sq_dist_neon(a, b) },
        #[allow(unreachable_patterns)]
        _ => scalar::sq_dist(a, b),
    }
}

/// Asymmetric i8 distance: squared Euclidean distance between an f32
/// query and a scalar-quantised i8 vector, decoding on the fly as
/// `decode_j(c) = bias[j] + scale[j]·c`. The reduction uses the same
/// fixed 32-accumulator tree as [`sq_dist_f32`]; per lane the operation
/// order is `convert → mul → add → sub → mul → accumulate` on every
/// backend (the i8→f32 conversion is exact, no FMA anywhere), so the
/// result is bitwise-identical across backends.
///
/// This is the ADC ("asymmetric distance computation") inner loop of
/// the IVF+i8 index tier: the query stays full precision, only the
/// stored vector is compressed.
///
/// # Panics
/// Debug-asserts equal lengths; in release the shortest slice governs.
#[inline]
pub fn sq_dist_q8_f32(q: &[f32], codes: &[i8], scale: &[f32], bias: &[f32]) -> f32 {
    sq_dist_q8_f32_on(backend(), q, codes, scale, bias)
}

/// [`sq_dist_q8_f32`] on an explicit backend.
///
/// # Panics
/// Panics if `be` is not supported on this CPU.
pub fn sq_dist_q8_f32_on(be: Backend, q: &[f32], codes: &[i8], scale: &[f32], bias: &[f32]) -> f32 {
    debug_assert_eq!(q.len(), codes.len(), "sq_dist_q8 length mismatch");
    debug_assert_eq!(q.len(), scale.len(), "sq_dist_q8 scale length mismatch");
    debug_assert_eq!(q.len(), bias.len(), "sq_dist_q8 bias length mismatch");
    let n = q.len().min(codes.len()).min(scale.len()).min(bias.len());
    let (q, codes, scale, bias) = (&q[..n], &codes[..n], &scale[..n], &bias[..n]);
    match check(be) {
        Backend::Scalar => scalar::sq_dist_q8(q, codes, scale, bias),
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => unsafe { x86::sq_dist_q8_sse2(q, codes, scale, bias) },
        // Every AVX-512 F+DQ part also implements AVX2, and the AVX2
        // kernel already realises the canonical 32-lane reduction; a
        // dedicated 512-bit widening kernel would change packing only,
        // not values, so the AVX-512 tier shares the AVX2 body.
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 | Backend::Avx512 => unsafe { x86::sq_dist_q8_avx2(q, codes, scale, bias) },
        // No NEON widening kernel yet: the scalar reference *is* the
        // canonical semantics, so falling back keeps aarch64 results
        // bitwise-identical to every other backend.
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => scalar::sq_dist_q8(q, codes, scale, bias),
        #[allow(unreachable_patterns)]
        _ => scalar::sq_dist_q8(q, codes, scale, bias),
    }
}

/// `out[j] += a · b[j]` — element-wise, bitwise-identical across
/// backends.
///
/// # Panics
/// Panics if `b` is shorter than `out`.
#[inline]
pub fn axpy_f32(out: &mut [f32], a: f32, b: &[f32]) {
    axpy_f32_on(backend(), out, a, b)
}

/// [`axpy_f32`] on an explicit backend.
///
/// # Panics
/// Panics if the backend is unsupported or `b` is shorter than `out`.
pub fn axpy_f32_on(be: Backend, out: &mut [f32], a: f32, b: &[f32]) {
    let n = out.len();
    let b = &b[..n];
    match check(be) {
        Backend::Scalar => scalar::axpy(out, a, b),
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => unsafe { x86::axpy_sse2(out, a, b) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { x86::axpy_avx2(out, a, b) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 => unsafe { x86::axpy_avx512(out, a, b) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => unsafe { neon::axpy_neon(out, a, b) },
        #[allow(unreachable_patterns)]
        _ => scalar::axpy(out, a, b),
    }
}

/// `out[j] += a0·b0[j] + a1·b1[j] + a2·b2[j] + a3·b3[j]` — the fused
/// four-row `axpy` microkernel behind every blocked matmul. Per element
/// the operation order is the scalar left-to-right sum, so results are
/// bitwise-identical across backends (and to the pre-SIMD kernels).
///
/// # Panics
/// Panics if any `b*` is shorter than `out`.
#[inline]
pub fn axpy4_f32(out: &mut [f32], a: [f32; 4], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) {
    axpy4_f32_on(backend(), out, a, b0, b1, b2, b3)
}

/// [`axpy4_f32`] on an explicit backend.
///
/// # Panics
/// Panics if the backend is unsupported or any `b*` is shorter than
/// `out`.
pub fn axpy4_f32_on(
    be: Backend,
    out: &mut [f32],
    a: [f32; 4],
    b0: &[f32],
    b1: &[f32],
    b2: &[f32],
    b3: &[f32],
) {
    let n = out.len();
    let (b0, b1, b2, b3) = (&b0[..n], &b1[..n], &b2[..n], &b3[..n]);
    match check(be) {
        Backend::Scalar => scalar::axpy4(out, a, b0, b1, b2, b3),
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => unsafe { x86::axpy4_sse2(out, a, b0, b1, b2, b3) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { x86::axpy4_avx2(out, a, b0, b1, b2, b3) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 => unsafe { x86::axpy4_avx512(out, a, b0, b1, b2, b3) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => unsafe { neon::axpy4_neon(out, a, b0, b1, b2, b3) },
        #[allow(unreachable_patterns)]
        _ => scalar::axpy4(out, a, b0, b1, b2, b3),
    }
}

/// Two independent [`axpy4_f32`]s sharing one pass over the `b*` rows:
/// `out0[j] += a0·b*`, `out1[j] += a1·b*`. Each output row's per-element
/// operation order is exactly [`axpy4_f32`]'s, so results are bitwise
/// identical to two separate calls — the fusion only halves the `b*`
/// memory traffic (the blocked matmul's register-blocking over output
/// rows, which is what lifts it off the L2-bandwidth ceiling).
///
/// # Panics
/// Panics if `out1` or any `b*` is shorter than `out0`.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn axpy4x2_f32(
    out0: &mut [f32],
    out1: &mut [f32],
    a0: [f32; 4],
    a1: [f32; 4],
    b0: &[f32],
    b1: &[f32],
    b2: &[f32],
    b3: &[f32],
) {
    axpy4x2_f32_on(backend(), out0, out1, a0, a1, b0, b1, b2, b3)
}

/// [`axpy4x2_f32`] on an explicit backend.
///
/// # Panics
/// Panics if the backend is unsupported or `out1`/any `b*` is shorter
/// than `out0`.
#[allow(clippy::too_many_arguments)]
pub fn axpy4x2_f32_on(
    be: Backend,
    out0: &mut [f32],
    out1: &mut [f32],
    a0: [f32; 4],
    a1: [f32; 4],
    b0: &[f32],
    b1: &[f32],
    b2: &[f32],
    b3: &[f32],
) {
    let n = out0.len();
    let out1 = &mut out1[..n];
    let (b0, b1, b2, b3) = (&b0[..n], &b1[..n], &b2[..n], &b3[..n]);
    match check(be) {
        Backend::Scalar => scalar::axpy4x2(out0, out1, a0, a1, b0, b1, b2, b3),
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => unsafe { x86::axpy4x2_sse2(out0, out1, a0, a1, b0, b1, b2, b3) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { x86::axpy4x2_avx2(out0, out1, a0, a1, b0, b1, b2, b3) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 => unsafe { x86::axpy4x2_avx512(out0, out1, a0, a1, b0, b1, b2, b3) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => unsafe { neon::axpy4x2_neon(out0, out1, a0, a1, b0, b1, b2, b3) },
        #[allow(unreachable_patterns)]
        _ => scalar::axpy4x2(out0, out1, a0, a1, b0, b1, b2, b3),
    }
}

/// Four independent [`axpy4_f32`]s sharing one pass over the `b*` rows:
/// `out_r[j] += a[r][0]·b0[j] + a[r][1]·b1[j] + a[r][2]·b2[j] +
/// a[r][3]·b3[j]` for `r = 0..4`. Each row's per-element operation order
/// is exactly [`axpy4_f32`]'s, so the result is bitwise-identical to
/// four separate calls (equivalently two [`axpy4x2_f32`]s) — the wider
/// fusion quarters the `b*` traffic and halves the `out` traffic of the
/// pair kernel. Backends without a fused four-row kernel run two pair
/// passes: same bits, just more B fetches.
///
/// # Panics
/// Panics if any `out*`/`b*` is shorter than `out0`.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn axpy4x4_f32(
    out0: &mut [f32],
    out1: &mut [f32],
    out2: &mut [f32],
    out3: &mut [f32],
    a: [[f32; 4]; 4],
    b0: &[f32],
    b1: &[f32],
    b2: &[f32],
    b3: &[f32],
) {
    axpy4x4_f32_on(backend(), out0, out1, out2, out3, a, b0, b1, b2, b3)
}

/// [`axpy4x4_f32`] on an explicit backend.
///
/// # Panics
/// Panics if the backend is unsupported or any `out*`/`b*` is shorter
/// than `out0`.
#[allow(clippy::too_many_arguments)]
pub fn axpy4x4_f32_on(
    be: Backend,
    out0: &mut [f32],
    out1: &mut [f32],
    out2: &mut [f32],
    out3: &mut [f32],
    a: [[f32; 4]; 4],
    b0: &[f32],
    b1: &[f32],
    b2: &[f32],
    b3: &[f32],
) {
    let n = out0.len();
    let (out1, out2, out3) = (&mut out1[..n], &mut out2[..n], &mut out3[..n]);
    let (b0, b1, b2, b3) = (&b0[..n], &b1[..n], &b2[..n], &b3[..n]);
    match check(be) {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 => unsafe {
            x86::axpy4x4_avx512(out0, out1, out2, out3, a, b0, b1, b2, b3)
        },
        be => {
            // Two pair passes reproduce the fused kernel bit for bit:
            // each row's operation order is unchanged by the split.
            axpy4x2_f32_on(be, out0, out1, a[0], a[1], b0, b1, b2, b3);
            axpy4x2_f32_on(be, out2, out3, a[2], a[3], b0, b1, b2, b3);
        }
    }
}

/// `out[j] = √((ax − bx[j])² + (ay − by[j])²)` — one row of point
/// distances from a fixed point to a structure-of-arrays trajectory.
/// Element-wise (IEEE sqrt is correctly rounded), so bitwise-identical
/// across backends and to `Point::dist`.
///
/// # Panics
/// Panics if `bx` or `by` is shorter than `out`.
#[inline]
pub fn dist_row_f64(ax: f64, ay: f64, bx: &[f64], by: &[f64], out: &mut [f64]) {
    dist_row_f64_on(backend(), ax, ay, bx, by, out)
}

/// [`dist_row_f64`] on an explicit backend.
///
/// # Panics
/// Panics if the backend is unsupported or `bx`/`by` is shorter than
/// `out`.
pub fn dist_row_f64_on(be: Backend, ax: f64, ay: f64, bx: &[f64], by: &[f64], out: &mut [f64]) {
    let n = out.len();
    let (bx, by) = (&bx[..n], &by[..n]);
    match check(be) {
        Backend::Scalar => scalar::dist_row(ax, ay, bx, by, out),
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => unsafe { x86::dist_row_sse2(ax, ay, bx, by, out) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { x86::dist_row_avx2(ax, ay, bx, by, out) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 => unsafe { x86::dist_row_avx512(ax, ay, bx, by, out) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => unsafe { neon::dist_row_neon(ax, ay, bx, by, out) },
        #[allow(unreachable_patterns)]
        _ => scalar::dist_row(ax, ay, bx, by, out),
    }
}

/// `out[j] = min(a[j], b[j])` with `min(x, y) = if x < y { x } else
/// { y }` — the exact semantics of the x86 `minpd` instruction, matched
/// by the scalar reference. Element-wise, bitwise-identical across
/// backends for non-NaN inputs (the DP recurrences never produce NaN).
///
/// # Panics
/// Panics if `a` or `b` is shorter than `out`.
#[inline]
pub fn elem_min_f64(a: &[f64], b: &[f64], out: &mut [f64]) {
    elem_min_f64_on(backend(), a, b, out)
}

/// [`elem_min_f64`] on an explicit backend.
///
/// # Panics
/// Panics if the backend is unsupported or `a`/`b` is shorter than
/// `out`.
pub fn elem_min_f64_on(be: Backend, a: &[f64], b: &[f64], out: &mut [f64]) {
    let n = out.len();
    let (a, b) = (&a[..n], &b[..n]);
    match check(be) {
        Backend::Scalar => scalar::elem_min(a, b, out),
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => unsafe { x86::elem_min_sse2(a, b, out) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { x86::elem_min_avx2(a, b, out) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 => unsafe { x86::elem_min_avx512(a, b, out) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => unsafe { neon::elem_min_neon(a, b, out) },
        #[allow(unreachable_patterns)]
        _ => scalar::elem_min(a, b, out),
    }
}

/// `out[j] = a[j] + b[j]` — element-wise, bitwise-identical across
/// backends.
///
/// # Panics
/// Panics if `a` or `b` is shorter than `out`.
#[inline]
pub fn elem_add_f64(a: &[f64], b: &[f64], out: &mut [f64]) {
    elem_add_f64_on(backend(), a, b, out)
}

/// [`elem_add_f64`] on an explicit backend.
///
/// # Panics
/// Panics if the backend is unsupported or `a`/`b` is shorter than
/// `out`.
pub fn elem_add_f64_on(be: Backend, a: &[f64], b: &[f64], out: &mut [f64]) {
    let n = out.len();
    let (a, b) = (&a[..n], &b[..n]);
    match check(be) {
        Backend::Scalar => scalar::elem_add(a, b, out),
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => unsafe { x86::elem_add_sse2(a, b, out) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { x86::elem_add_avx2(a, b, out) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 => unsafe { x86::elem_add_avx512(a, b, out) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => unsafe { neon::elem_add_neon(a, b, out) },
        #[allow(unreachable_patterns)]
        _ => scalar::elem_add(a, b, out),
    }
}

/// `out[j] = a[j] + s` — element-wise, bitwise-identical across
/// backends.
///
/// # Panics
/// Panics if `a` is shorter than `out`.
#[inline]
pub fn add_scalar_f64(a: &[f64], s: f64, out: &mut [f64]) {
    add_scalar_f64_on(backend(), a, s, out)
}

/// [`add_scalar_f64`] on an explicit backend.
///
/// # Panics
/// Panics if the backend is unsupported or `a` is shorter than `out`.
pub fn add_scalar_f64_on(be: Backend, a: &[f64], s: f64, out: &mut [f64]) {
    let n = out.len();
    let a = &a[..n];
    match check(be) {
        Backend::Scalar => scalar::add_scalar(a, s, out),
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => unsafe { x86::add_scalar_sse2(a, s, out) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { x86::add_scalar_avx2(a, s, out) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 => unsafe { x86::add_scalar_avx512(a, s, out) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => unsafe { neon::add_scalar_neon(a, s, out) },
        #[allow(unreachable_patterns)]
        _ => scalar::add_scalar(a, s, out),
    }
}

/// `out[j] = (|ax − bx[j]| ≤ eps && |ay − by[j]| ≤ eps) as u8` — one row
/// of the EDR/LCSS per-dimension matching predicate. Comparisons are
/// exact, so results are identical across backends.
///
/// # Panics
/// Panics if `bx` or `by` is shorter than `out`.
#[inline]
pub fn matches_row_f64(ax: f64, ay: f64, eps: f64, bx: &[f64], by: &[f64], out: &mut [u8]) {
    matches_row_f64_on(backend(), ax, ay, eps, bx, by, out)
}

/// [`matches_row_f64`] on an explicit backend.
///
/// # Panics
/// Panics if the backend is unsupported or `bx`/`by` is shorter than
/// `out`.
pub fn matches_row_f64_on(
    be: Backend,
    ax: f64,
    ay: f64,
    eps: f64,
    bx: &[f64],
    by: &[f64],
    out: &mut [u8],
) {
    let n = out.len();
    let (bx, by) = (&bx[..n], &by[..n]);
    match check(be) {
        Backend::Scalar => scalar::matches_row(ax, ay, eps, bx, by, out),
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => unsafe { x86::matches_row_sse2(ax, ay, eps, bx, by, out) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { x86::matches_row_avx2(ax, ay, eps, bx, by, out) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 => unsafe { x86::matches_row_avx512(ax, ay, eps, bx, by, out) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => unsafe { neon::matches_row_neon(ax, ay, eps, bx, by, out) },
        #[allow(unreachable_patterns)]
        _ => scalar::matches_row(ax, ay, eps, bx, by, out),
    }
}

/// Guards the `_on` hooks: an explicitly requested backend the CPU
/// cannot run is a programming error (the dispatching wrappers can never
/// produce one — [`set_backend`] and [`resolve`] only install supported
/// backends).
#[inline]
fn check(be: Backend) -> Backend {
    assert!(be.supported(), "backend {} not supported here", be.name());
    be
}

// ---------------------------------------------------------------------
// Scalar reference implementations — the canonical semantics.
// ---------------------------------------------------------------------

mod scalar {
    /// Number of strided accumulators in the canonical reduction.
    pub(super) const LANES: usize = 32;

    /// The fixed combine tree over the 32 accumulators (module docs §2).
    #[inline]
    pub(super) fn combine(acc: &[f32; LANES]) -> f32 {
        let mut t = [0.0f32; 16];
        for k in 0..16 {
            t[k] = acc[k] + acc[k + 16];
        }
        let mut u = [0.0f32; 8];
        for k in 0..8 {
            u[k] = t[k] + t[k + 8];
        }
        let mut v = [0.0f32; 4];
        for k in 0..4 {
            v[k] = u[k] + u[k + 4];
        }
        (v[0] + v[2]) + (v[1] + v[3])
    }

    pub(super) fn dot(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let chunks = n / LANES;
        let mut acc = [0.0f32; LANES];
        for c in 0..chunks {
            let x = &a[c * LANES..(c + 1) * LANES];
            let y = &b[c * LANES..(c + 1) * LANES];
            for l in 0..LANES {
                acc[l] += x[l] * y[l];
            }
        }
        let mut s = combine(&acc);
        for i in chunks * LANES..n {
            s += a[i] * b[i];
        }
        s
    }

    pub(super) fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let chunks = n / LANES;
        let mut acc = [0.0f32; LANES];
        for c in 0..chunks {
            let x = &a[c * LANES..(c + 1) * LANES];
            let y = &b[c * LANES..(c + 1) * LANES];
            for l in 0..LANES {
                let d = x[l] - y[l];
                acc[l] += d * d;
            }
        }
        let mut s = combine(&acc);
        for i in chunks * LANES..n {
            let d = a[i] - b[i];
            s += d * d;
        }
        s
    }

    pub(super) fn sq_dist_q8(q: &[f32], codes: &[i8], scale: &[f32], bias: &[f32]) -> f32 {
        let n = q.len();
        let chunks = n / LANES;
        let mut acc = [0.0f32; LANES];
        for c in 0..chunks {
            let base = c * LANES;
            for (l, a) in acc.iter_mut().enumerate() {
                let j = base + l;
                let v = bias[j] + scale[j] * f32::from(codes[j]);
                let d = q[j] - v;
                *a += d * d;
            }
        }
        let mut s = combine(&acc);
        for j in chunks * LANES..n {
            let v = bias[j] + scale[j] * f32::from(codes[j]);
            let d = q[j] - v;
            s += d * d;
        }
        s
    }

    pub(super) fn axpy(out: &mut [f32], a: f32, b: &[f32]) {
        for (o, &bv) in out.iter_mut().zip(b.iter()) {
            *o += a * bv;
        }
    }

    pub(super) fn axpy4(
        out: &mut [f32],
        a: [f32; 4],
        b0: &[f32],
        b1: &[f32],
        b2: &[f32],
        b3: &[f32],
    ) {
        for j in 0..out.len() {
            out[j] += a[0] * b0[j] + a[1] * b1[j] + a[2] * b2[j] + a[3] * b3[j];
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn axpy4x2(
        out0: &mut [f32],
        out1: &mut [f32],
        a0: [f32; 4],
        a1: [f32; 4],
        b0: &[f32],
        b1: &[f32],
        b2: &[f32],
        b3: &[f32],
    ) {
        for j in 0..out0.len() {
            out0[j] += a0[0] * b0[j] + a0[1] * b1[j] + a0[2] * b2[j] + a0[3] * b3[j];
            out1[j] += a1[0] * b0[j] + a1[1] * b1[j] + a1[2] * b2[j] + a1[3] * b3[j];
        }
    }

    pub(super) fn dist_row(ax: f64, ay: f64, bx: &[f64], by: &[f64], out: &mut [f64]) {
        for j in 0..out.len() {
            let dx = ax - bx[j];
            let dy = ay - by[j];
            out[j] = (dx * dx + dy * dy).sqrt();
        }
    }

    /// `minpd` semantics: returns `b` when the operands are equal.
    #[inline]
    pub(super) fn min_pd(a: f64, b: f64) -> f64 {
        if a < b {
            a
        } else {
            b
        }
    }

    pub(super) fn elem_min(a: &[f64], b: &[f64], out: &mut [f64]) {
        for j in 0..out.len() {
            out[j] = min_pd(a[j], b[j]);
        }
    }

    pub(super) fn elem_add(a: &[f64], b: &[f64], out: &mut [f64]) {
        for j in 0..out.len() {
            out[j] = a[j] + b[j];
        }
    }

    pub(super) fn add_scalar(a: &[f64], s: f64, out: &mut [f64]) {
        for j in 0..out.len() {
            out[j] = a[j] + s;
        }
    }

    pub(super) fn matches_row(ax: f64, ay: f64, eps: f64, bx: &[f64], by: &[f64], out: &mut [u8]) {
        for j in 0..out.len() {
            out[j] = u8::from((ax - bx[j]).abs() <= eps && (ay - by[j]).abs() <= eps);
        }
    }
}

// ---------------------------------------------------------------------
// x86_64 kernels: SSE2 (baseline) and AVX2 (runtime-detected).
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;

    // ---- f32 reductions: 32 strided accumulators + fixed tree ----

    /// Final combine for SSE2/AVX2 once the tree is down to one xmm
    /// holding `v[0..4]`: `(v0 + v2) + (v1 + v3)`.
    #[inline]
    unsafe fn combine_v4(v: __m128) -> f32 {
        // (v0+v2, v1+v3, …)
        let hi = _mm_movehl_ps(v, v);
        let w = _mm_add_ps(v, hi);
        // lane1 of w
        let w1 = _mm_shuffle_ps(w, w, 0b01);
        _mm_cvtss_f32(_mm_add_ss(w, w1))
    }

    /// Shared tail + tree for the SSE2 reductions: `s0..s7` hold strides
    /// `4r..4r+4`.
    #[inline]
    unsafe fn tree_sse2(s: [__m128; 8]) -> __m128 {
        let d0 = _mm_add_ps(s[0], s[4]); // t[0..4]
        let d1 = _mm_add_ps(s[1], s[5]); // t[4..8]
        let d2 = _mm_add_ps(s[2], s[6]); // t[8..12]
        let d3 = _mm_add_ps(s[3], s[7]); // t[12..16]
        let e0 = _mm_add_ps(d0, d2); // u[0..4]
        let e1 = _mm_add_ps(d1, d3); // u[4..8]
        _mm_add_ps(e0, e1) // v[0..4]
    }

    /// Shared tree for the AVX2 reductions: `c0..c3` hold strides
    /// `8r..8r+8`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn tree_avx2(c: [__m256; 4]) -> __m128 {
        let d0 = _mm256_add_ps(c[0], c[2]); // t[0..8]
        let d1 = _mm256_add_ps(c[1], c[3]); // t[8..16]
        let e = _mm256_add_ps(d0, d1); // u[0..8]
                                       // v[0..4] = u[0..4] + u[4..8]
        _mm_add_ps(_mm256_castps256_ps128(e), _mm256_extractf128_ps::<1>(e))
    }

    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn dot_sse2(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let chunks = n / 32;
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut s = [_mm_setzero_ps(); 8];
        for c in 0..chunks {
            let base = c * 32;
            for (r, acc) in s.iter_mut().enumerate() {
                let x = _mm_loadu_ps(pa.add(base + 4 * r));
                let y = _mm_loadu_ps(pb.add(base + 4 * r));
                *acc = _mm_add_ps(*acc, _mm_mul_ps(x, y));
            }
        }
        let mut total = combine_v4(tree_sse2(s));
        for i in chunks * 32..n {
            total += a[i] * b[i];
        }
        total
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dot_avx2(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let chunks = n / 32;
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut c0 = _mm256_setzero_ps();
        let mut c1 = _mm256_setzero_ps();
        let mut c2 = _mm256_setzero_ps();
        let mut c3 = _mm256_setzero_ps();
        for c in 0..chunks {
            let base = c * 32;
            c0 = _mm256_add_ps(
                c0,
                _mm256_mul_ps(_mm256_loadu_ps(pa.add(base)), _mm256_loadu_ps(pb.add(base))),
            );
            c1 = _mm256_add_ps(
                c1,
                _mm256_mul_ps(
                    _mm256_loadu_ps(pa.add(base + 8)),
                    _mm256_loadu_ps(pb.add(base + 8)),
                ),
            );
            c2 = _mm256_add_ps(
                c2,
                _mm256_mul_ps(
                    _mm256_loadu_ps(pa.add(base + 16)),
                    _mm256_loadu_ps(pb.add(base + 16)),
                ),
            );
            c3 = _mm256_add_ps(
                c3,
                _mm256_mul_ps(
                    _mm256_loadu_ps(pa.add(base + 24)),
                    _mm256_loadu_ps(pb.add(base + 24)),
                ),
            );
        }
        let mut total = combine_v4(tree_avx2([c0, c1, c2, c3]));
        for i in chunks * 32..n {
            total += a[i] * b[i];
        }
        total
    }

    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn sq_dist_sse2(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let chunks = n / 32;
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut s = [_mm_setzero_ps(); 8];
        for c in 0..chunks {
            let base = c * 32;
            for (r, acc) in s.iter_mut().enumerate() {
                let x = _mm_loadu_ps(pa.add(base + 4 * r));
                let y = _mm_loadu_ps(pb.add(base + 4 * r));
                let d = _mm_sub_ps(x, y);
                *acc = _mm_add_ps(*acc, _mm_mul_ps(d, d));
            }
        }
        let mut total = combine_v4(tree_sse2(s));
        for i in chunks * 32..n {
            let d = a[i] - b[i];
            total += d * d;
        }
        total
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn sq_dist_avx2(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let chunks = n / 32;
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut c0 = _mm256_setzero_ps();
        let mut c1 = _mm256_setzero_ps();
        let mut c2 = _mm256_setzero_ps();
        let mut c3 = _mm256_setzero_ps();
        for c in 0..chunks {
            let base = c * 32;
            let d0 = _mm256_sub_ps(_mm256_loadu_ps(pa.add(base)), _mm256_loadu_ps(pb.add(base)));
            c0 = _mm256_add_ps(c0, _mm256_mul_ps(d0, d0));
            let d1 = _mm256_sub_ps(
                _mm256_loadu_ps(pa.add(base + 8)),
                _mm256_loadu_ps(pb.add(base + 8)),
            );
            c1 = _mm256_add_ps(c1, _mm256_mul_ps(d1, d1));
            let d2 = _mm256_sub_ps(
                _mm256_loadu_ps(pa.add(base + 16)),
                _mm256_loadu_ps(pb.add(base + 16)),
            );
            c2 = _mm256_add_ps(c2, _mm256_mul_ps(d2, d2));
            let d3 = _mm256_sub_ps(
                _mm256_loadu_ps(pa.add(base + 24)),
                _mm256_loadu_ps(pb.add(base + 24)),
            );
            c3 = _mm256_add_ps(c3, _mm256_mul_ps(d3, d3));
        }
        let mut total = combine_v4(tree_avx2([c0, c1, c2, c3]));
        for i in chunks * 32..n {
            let d = a[i] - b[i];
            total += d * d;
        }
        total
    }

    // ---- i8 asymmetric distance (ADC) ----

    /// Scalar tail shared by the q8 kernels: continues accumulating on
    /// the combined tree total, term by term in ascending index order —
    /// the exact FP sequence of the scalar reference's tail loop.
    #[inline]
    fn q8_tail(
        total: f32,
        q: &[f32],
        codes: &[i8],
        scale: &[f32],
        bias: &[f32],
        from: usize,
    ) -> f32 {
        let mut s = total;
        for j in from..q.len() {
            let v = bias[j] + scale[j] * f32::from(codes[j]);
            let d = q[j] - v;
            s += d * d;
        }
        s
    }

    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn sq_dist_q8_sse2(
        q: &[f32],
        codes: &[i8],
        scale: &[f32],
        bias: &[f32],
    ) -> f32 {
        let n = q.len();
        let chunks = n / 32;
        let (pq, ps, pb) = (q.as_ptr(), scale.as_ptr(), bias.as_ptr());
        let pc = codes.as_ptr();
        let zero = _mm_setzero_si128();
        let mut s = [_mm_setzero_ps(); 8];
        for c in 0..chunks {
            let base = c * 32;
            // Two 16-code loads per chunk, sign-extended i8→i16→i32 via
            // the SSE2 unpack-with-sign idiom, then converted exactly to
            // f32 — `_mm_cvtepi32_ps` on an exact integer matches the
            // scalar `f32::from(i8)` bit for bit.
            for half in 0..2 {
                let raw = _mm_loadu_si128(pc.add(base + 16 * half).cast());
                let sign8 = _mm_cmpgt_epi8(zero, raw);
                let lo16 = _mm_unpacklo_epi8(raw, sign8);
                let hi16 = _mm_unpackhi_epi8(raw, sign8);
                let sl = _mm_cmpgt_epi16(zero, lo16);
                let sh = _mm_cmpgt_epi16(zero, hi16);
                let quads = [
                    _mm_unpacklo_epi16(lo16, sl),
                    _mm_unpackhi_epi16(lo16, sl),
                    _mm_unpacklo_epi16(hi16, sh),
                    _mm_unpackhi_epi16(hi16, sh),
                ];
                for (g, &ints) in quads.iter().enumerate() {
                    let r = 4 * half + g;
                    let j = base + 4 * r;
                    let f = _mm_cvtepi32_ps(ints);
                    let v = _mm_add_ps(
                        _mm_loadu_ps(pb.add(j)),
                        _mm_mul_ps(_mm_loadu_ps(ps.add(j)), f),
                    );
                    let d = _mm_sub_ps(_mm_loadu_ps(pq.add(j)), v);
                    s[r] = _mm_add_ps(s[r], _mm_mul_ps(d, d));
                }
            }
        }
        q8_tail(combine_v4(tree_sse2(s)), q, codes, scale, bias, chunks * 32)
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn sq_dist_q8_avx2(
        q: &[f32],
        codes: &[i8],
        scale: &[f32],
        bias: &[f32],
    ) -> f32 {
        let n = q.len();
        let chunks = n / 32;
        let (pq, ps, pb) = (q.as_ptr(), scale.as_ptr(), bias.as_ptr());
        let pc = codes.as_ptr();
        let mut acc = [_mm256_setzero_ps(); 4];
        for c in 0..chunks {
            let base = c * 32;
            for (r, a) in acc.iter_mut().enumerate() {
                let j = base + 8 * r;
                // 8 codes, sign-extended in one instruction, converted
                // exactly to f32.
                let ints = _mm256_cvtepi8_epi32(_mm_loadl_epi64(pc.add(j).cast()));
                let f = _mm256_cvtepi32_ps(ints);
                let v = _mm256_add_ps(
                    _mm256_loadu_ps(pb.add(j)),
                    _mm256_mul_ps(_mm256_loadu_ps(ps.add(j)), f),
                );
                let d = _mm256_sub_ps(_mm256_loadu_ps(pq.add(j)), v);
                *a = _mm256_add_ps(*a, _mm256_mul_ps(d, d));
            }
        }
        q8_tail(
            combine_v4(tree_avx2(acc)),
            q,
            codes,
            scale,
            bias,
            chunks * 32,
        )
    }

    // ---- f32 element-wise ----

    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn axpy_sse2(out: &mut [f32], a: f32, b: &[f32]) {
        let n = out.len();
        let va = _mm_set1_ps(a);
        let (po, pb) = (out.as_mut_ptr(), b.as_ptr());
        let mut j = 0;
        while j + 4 <= n {
            let o = _mm_loadu_ps(po.add(j));
            let t = _mm_mul_ps(va, _mm_loadu_ps(pb.add(j)));
            _mm_storeu_ps(po.add(j), _mm_add_ps(o, t));
            j += 4;
        }
        while j < n {
            out[j] += a * b[j];
            j += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn axpy_avx2(out: &mut [f32], a: f32, b: &[f32]) {
        let n = out.len();
        let va = _mm256_set1_ps(a);
        let (po, pb) = (out.as_mut_ptr(), b.as_ptr());
        let mut j = 0;
        while j + 8 <= n {
            let o = _mm256_loadu_ps(po.add(j));
            let t = _mm256_mul_ps(va, _mm256_loadu_ps(pb.add(j)));
            _mm256_storeu_ps(po.add(j), _mm256_add_ps(o, t));
            j += 8;
        }
        while j < n {
            out[j] += a * b[j];
            j += 1;
        }
    }

    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn axpy4_sse2(
        out: &mut [f32],
        a: [f32; 4],
        b0: &[f32],
        b1: &[f32],
        b2: &[f32],
        b3: &[f32],
    ) {
        let n = out.len();
        let va0 = _mm_set1_ps(a[0]);
        let va1 = _mm_set1_ps(a[1]);
        let va2 = _mm_set1_ps(a[2]);
        let va3 = _mm_set1_ps(a[3]);
        let po = out.as_mut_ptr();
        let (p0, p1, p2, p3) = (b0.as_ptr(), b1.as_ptr(), b2.as_ptr(), b3.as_ptr());
        let mut j = 0;
        while j + 4 <= n {
            let mut t = _mm_mul_ps(va0, _mm_loadu_ps(p0.add(j)));
            t = _mm_add_ps(t, _mm_mul_ps(va1, _mm_loadu_ps(p1.add(j))));
            t = _mm_add_ps(t, _mm_mul_ps(va2, _mm_loadu_ps(p2.add(j))));
            t = _mm_add_ps(t, _mm_mul_ps(va3, _mm_loadu_ps(p3.add(j))));
            _mm_storeu_ps(po.add(j), _mm_add_ps(_mm_loadu_ps(po.add(j)), t));
            j += 4;
        }
        while j < n {
            out[j] += a[0] * b0[j] + a[1] * b1[j] + a[2] * b2[j] + a[3] * b3[j];
            j += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn axpy4_avx2(
        out: &mut [f32],
        a: [f32; 4],
        b0: &[f32],
        b1: &[f32],
        b2: &[f32],
        b3: &[f32],
    ) {
        let n = out.len();
        let va0 = _mm256_set1_ps(a[0]);
        let va1 = _mm256_set1_ps(a[1]);
        let va2 = _mm256_set1_ps(a[2]);
        let va3 = _mm256_set1_ps(a[3]);
        let po = out.as_mut_ptr();
        let (p0, p1, p2, p3) = (b0.as_ptr(), b1.as_ptr(), b2.as_ptr(), b3.as_ptr());
        let mut j = 0;
        // Two independent 8-lane chains per iteration: each output lane
        // still sees exactly `out[j] + (((a0·b0 + a1·b1) + a2·b2) + a3·b3)`,
        // the unroll only breaks the register dependency between
        // consecutive chunks so the multiplies pipeline.
        while j + 16 <= n {
            let mut t = _mm256_mul_ps(va0, _mm256_loadu_ps(p0.add(j)));
            let mut u = _mm256_mul_ps(va0, _mm256_loadu_ps(p0.add(j + 8)));
            t = _mm256_add_ps(t, _mm256_mul_ps(va1, _mm256_loadu_ps(p1.add(j))));
            u = _mm256_add_ps(u, _mm256_mul_ps(va1, _mm256_loadu_ps(p1.add(j + 8))));
            t = _mm256_add_ps(t, _mm256_mul_ps(va2, _mm256_loadu_ps(p2.add(j))));
            u = _mm256_add_ps(u, _mm256_mul_ps(va2, _mm256_loadu_ps(p2.add(j + 8))));
            t = _mm256_add_ps(t, _mm256_mul_ps(va3, _mm256_loadu_ps(p3.add(j))));
            u = _mm256_add_ps(u, _mm256_mul_ps(va3, _mm256_loadu_ps(p3.add(j + 8))));
            _mm256_storeu_ps(po.add(j), _mm256_add_ps(_mm256_loadu_ps(po.add(j)), t));
            _mm256_storeu_ps(
                po.add(j + 8),
                _mm256_add_ps(_mm256_loadu_ps(po.add(j + 8)), u),
            );
            j += 16;
        }
        while j + 8 <= n {
            let mut t = _mm256_mul_ps(va0, _mm256_loadu_ps(p0.add(j)));
            t = _mm256_add_ps(t, _mm256_mul_ps(va1, _mm256_loadu_ps(p1.add(j))));
            t = _mm256_add_ps(t, _mm256_mul_ps(va2, _mm256_loadu_ps(p2.add(j))));
            t = _mm256_add_ps(t, _mm256_mul_ps(va3, _mm256_loadu_ps(p3.add(j))));
            _mm256_storeu_ps(po.add(j), _mm256_add_ps(_mm256_loadu_ps(po.add(j)), t));
            j += 8;
        }
        while j < n {
            out[j] += a[0] * b0[j] + a[1] * b1[j] + a[2] * b2[j] + a[3] * b3[j];
            j += 1;
        }
    }

    #[target_feature(enable = "sse2")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn axpy4x2_sse2(
        out0: &mut [f32],
        out1: &mut [f32],
        a0: [f32; 4],
        a1: [f32; 4],
        b0: &[f32],
        b1: &[f32],
        b2: &[f32],
        b3: &[f32],
    ) {
        let n = out0.len();
        let va = [
            _mm_set1_ps(a0[0]),
            _mm_set1_ps(a0[1]),
            _mm_set1_ps(a0[2]),
            _mm_set1_ps(a0[3]),
            _mm_set1_ps(a1[0]),
            _mm_set1_ps(a1[1]),
            _mm_set1_ps(a1[2]),
            _mm_set1_ps(a1[3]),
        ];
        let (q0, q1) = (out0.as_mut_ptr(), out1.as_mut_ptr());
        let (p0, p1, p2, p3) = (b0.as_ptr(), b1.as_ptr(), b2.as_ptr(), b3.as_ptr());
        let mut j = 0;
        while j + 4 <= n {
            let r0 = _mm_loadu_ps(p0.add(j));
            let r1 = _mm_loadu_ps(p1.add(j));
            let r2 = _mm_loadu_ps(p2.add(j));
            let r3 = _mm_loadu_ps(p3.add(j));
            let mut t = _mm_mul_ps(va[0], r0);
            let mut u = _mm_mul_ps(va[4], r0);
            t = _mm_add_ps(t, _mm_mul_ps(va[1], r1));
            u = _mm_add_ps(u, _mm_mul_ps(va[5], r1));
            t = _mm_add_ps(t, _mm_mul_ps(va[2], r2));
            u = _mm_add_ps(u, _mm_mul_ps(va[6], r2));
            t = _mm_add_ps(t, _mm_mul_ps(va[3], r3));
            u = _mm_add_ps(u, _mm_mul_ps(va[7], r3));
            _mm_storeu_ps(q0.add(j), _mm_add_ps(_mm_loadu_ps(q0.add(j)), t));
            _mm_storeu_ps(q1.add(j), _mm_add_ps(_mm_loadu_ps(q1.add(j)), u));
            j += 4;
        }
        while j < n {
            out0[j] += a0[0] * b0[j] + a0[1] * b1[j] + a0[2] * b2[j] + a0[3] * b3[j];
            out1[j] += a1[0] * b0[j] + a1[1] * b1[j] + a1[2] * b2[j] + a1[3] * b3[j];
            j += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn axpy4x2_avx2(
        out0: &mut [f32],
        out1: &mut [f32],
        a0: [f32; 4],
        a1: [f32; 4],
        b0: &[f32],
        b1: &[f32],
        b2: &[f32],
        b3: &[f32],
    ) {
        let n = out0.len();
        let va = [
            _mm256_set1_ps(a0[0]),
            _mm256_set1_ps(a0[1]),
            _mm256_set1_ps(a0[2]),
            _mm256_set1_ps(a0[3]),
            _mm256_set1_ps(a1[0]),
            _mm256_set1_ps(a1[1]),
            _mm256_set1_ps(a1[2]),
            _mm256_set1_ps(a1[3]),
        ];
        let (q0, q1) = (out0.as_mut_ptr(), out1.as_mut_ptr());
        let (p0, p1, p2, p3) = (b0.as_ptr(), b1.as_ptr(), b2.as_ptr(), b3.as_ptr());
        let mut j = 0;
        while j + 8 <= n {
            let r0 = _mm256_loadu_ps(p0.add(j));
            let r1 = _mm256_loadu_ps(p1.add(j));
            let r2 = _mm256_loadu_ps(p2.add(j));
            let r3 = _mm256_loadu_ps(p3.add(j));
            let mut t = _mm256_mul_ps(va[0], r0);
            let mut u = _mm256_mul_ps(va[4], r0);
            t = _mm256_add_ps(t, _mm256_mul_ps(va[1], r1));
            u = _mm256_add_ps(u, _mm256_mul_ps(va[5], r1));
            t = _mm256_add_ps(t, _mm256_mul_ps(va[2], r2));
            u = _mm256_add_ps(u, _mm256_mul_ps(va[6], r2));
            t = _mm256_add_ps(t, _mm256_mul_ps(va[3], r3));
            u = _mm256_add_ps(u, _mm256_mul_ps(va[7], r3));
            _mm256_storeu_ps(q0.add(j), _mm256_add_ps(_mm256_loadu_ps(q0.add(j)), t));
            _mm256_storeu_ps(q1.add(j), _mm256_add_ps(_mm256_loadu_ps(q1.add(j)), u));
            j += 8;
        }
        while j < n {
            out0[j] += a0[0] * b0[j] + a0[1] * b1[j] + a0[2] * b2[j] + a0[3] * b3[j];
            out1[j] += a1[0] * b0[j] + a1[1] * b1[j] + a1[2] * b2[j] + a1[3] * b3[j];
            j += 1;
        }
    }

    // ---- f64 distance-DP rows ----

    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn dist_row_sse2(ax: f64, ay: f64, bx: &[f64], by: &[f64], out: &mut [f64]) {
        let n = out.len();
        let vax = _mm_set1_pd(ax);
        let vay = _mm_set1_pd(ay);
        let (px, py, po) = (bx.as_ptr(), by.as_ptr(), out.as_mut_ptr());
        let mut j = 0;
        while j + 2 <= n {
            let dx = _mm_sub_pd(vax, _mm_loadu_pd(px.add(j)));
            let dy = _mm_sub_pd(vay, _mm_loadu_pd(py.add(j)));
            let s = _mm_add_pd(_mm_mul_pd(dx, dx), _mm_mul_pd(dy, dy));
            _mm_storeu_pd(po.add(j), _mm_sqrt_pd(s));
            j += 2;
        }
        while j < n {
            let dx = ax - bx[j];
            let dy = ay - by[j];
            out[j] = (dx * dx + dy * dy).sqrt();
            j += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dist_row_avx2(ax: f64, ay: f64, bx: &[f64], by: &[f64], out: &mut [f64]) {
        let n = out.len();
        let vax = _mm256_set1_pd(ax);
        let vay = _mm256_set1_pd(ay);
        let (px, py, po) = (bx.as_ptr(), by.as_ptr(), out.as_mut_ptr());
        let mut j = 0;
        while j + 4 <= n {
            let dx = _mm256_sub_pd(vax, _mm256_loadu_pd(px.add(j)));
            let dy = _mm256_sub_pd(vay, _mm256_loadu_pd(py.add(j)));
            let s = _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
            _mm256_storeu_pd(po.add(j), _mm256_sqrt_pd(s));
            j += 4;
        }
        while j < n {
            let dx = ax - bx[j];
            let dy = ay - by[j];
            out[j] = (dx * dx + dy * dy).sqrt();
            j += 1;
        }
    }

    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn elem_min_sse2(a: &[f64], b: &[f64], out: &mut [f64]) {
        let n = out.len();
        let (pa, pb, po) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
        let mut j = 0;
        while j + 2 <= n {
            let m = _mm_min_pd(_mm_loadu_pd(pa.add(j)), _mm_loadu_pd(pb.add(j)));
            _mm_storeu_pd(po.add(j), m);
            j += 2;
        }
        while j < n {
            out[j] = super::scalar::min_pd(a[j], b[j]);
            j += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn elem_min_avx2(a: &[f64], b: &[f64], out: &mut [f64]) {
        let n = out.len();
        let (pa, pb, po) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
        let mut j = 0;
        while j + 4 <= n {
            let m = _mm256_min_pd(_mm256_loadu_pd(pa.add(j)), _mm256_loadu_pd(pb.add(j)));
            _mm256_storeu_pd(po.add(j), m);
            j += 4;
        }
        while j < n {
            out[j] = super::scalar::min_pd(a[j], b[j]);
            j += 1;
        }
    }

    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn elem_add_sse2(a: &[f64], b: &[f64], out: &mut [f64]) {
        let n = out.len();
        let (pa, pb, po) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
        let mut j = 0;
        while j + 2 <= n {
            let m = _mm_add_pd(_mm_loadu_pd(pa.add(j)), _mm_loadu_pd(pb.add(j)));
            _mm_storeu_pd(po.add(j), m);
            j += 2;
        }
        while j < n {
            out[j] = a[j] + b[j];
            j += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn elem_add_avx2(a: &[f64], b: &[f64], out: &mut [f64]) {
        let n = out.len();
        let (pa, pb, po) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
        let mut j = 0;
        while j + 4 <= n {
            let m = _mm256_add_pd(_mm256_loadu_pd(pa.add(j)), _mm256_loadu_pd(pb.add(j)));
            _mm256_storeu_pd(po.add(j), m);
            j += 4;
        }
        while j < n {
            out[j] = a[j] + b[j];
            j += 1;
        }
    }

    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn add_scalar_sse2(a: &[f64], s: f64, out: &mut [f64]) {
        let n = out.len();
        let vs = _mm_set1_pd(s);
        let (pa, po) = (a.as_ptr(), out.as_mut_ptr());
        let mut j = 0;
        while j + 2 <= n {
            _mm_storeu_pd(po.add(j), _mm_add_pd(_mm_loadu_pd(pa.add(j)), vs));
            j += 2;
        }
        while j < n {
            out[j] = a[j] + s;
            j += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn add_scalar_avx2(a: &[f64], s: f64, out: &mut [f64]) {
        let n = out.len();
        let vs = _mm256_set1_pd(s);
        let (pa, po) = (a.as_ptr(), out.as_mut_ptr());
        let mut j = 0;
        while j + 4 <= n {
            _mm256_storeu_pd(po.add(j), _mm256_add_pd(_mm256_loadu_pd(pa.add(j)), vs));
            j += 4;
        }
        while j < n {
            out[j] = a[j] + s;
            j += 1;
        }
    }

    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn matches_row_sse2(
        ax: f64,
        ay: f64,
        eps: f64,
        bx: &[f64],
        by: &[f64],
        out: &mut [u8],
    ) {
        let n = out.len();
        let vax = _mm_set1_pd(ax);
        let vay = _mm_set1_pd(ay);
        let veps = _mm_set1_pd(eps);
        let sign = _mm_set1_pd(-0.0);
        let (px, py) = (bx.as_ptr(), by.as_ptr());
        let mut j = 0;
        while j + 2 <= n {
            let dx = _mm_andnot_pd(sign, _mm_sub_pd(vax, _mm_loadu_pd(px.add(j))));
            let dy = _mm_andnot_pd(sign, _mm_sub_pd(vay, _mm_loadu_pd(py.add(j))));
            let m = _mm_and_pd(_mm_cmple_pd(dx, veps), _mm_cmple_pd(dy, veps));
            let bits = _mm_movemask_pd(m);
            out[j] = (bits & 1) as u8;
            out[j + 1] = ((bits >> 1) & 1) as u8;
            j += 2;
        }
        while j < n {
            out[j] = u8::from((ax - bx[j]).abs() <= eps && (ay - by[j]).abs() <= eps);
            j += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn matches_row_avx2(
        ax: f64,
        ay: f64,
        eps: f64,
        bx: &[f64],
        by: &[f64],
        out: &mut [u8],
    ) {
        let n = out.len();
        let vax = _mm256_set1_pd(ax);
        let vay = _mm256_set1_pd(ay);
        let veps = _mm256_set1_pd(eps);
        let sign = _mm256_set1_pd(-0.0);
        let (px, py) = (bx.as_ptr(), by.as_ptr());
        let mut j = 0;
        while j + 4 <= n {
            let dx = _mm256_andnot_pd(sign, _mm256_sub_pd(vax, _mm256_loadu_pd(px.add(j))));
            let dy = _mm256_andnot_pd(sign, _mm256_sub_pd(vay, _mm256_loadu_pd(py.add(j))));
            let m = _mm256_and_pd(
                _mm256_cmp_pd::<_CMP_LE_OQ>(dx, veps),
                _mm256_cmp_pd::<_CMP_LE_OQ>(dy, veps),
            );
            let bits = _mm256_movemask_pd(m);
            out[j] = (bits & 1) as u8;
            out[j + 1] = ((bits >> 1) & 1) as u8;
            out[j + 2] = ((bits >> 2) & 1) as u8;
            out[j + 3] = ((bits >> 3) & 1) as u8;
            j += 4;
        }
        while j < n {
            out[j] = u8::from((ax - bx[j]).abs() <= eps && (ay - by[j]).abs() <= eps);
            j += 1;
        }
    }

    // ---- AVX-512 (F + DQ) kernels ----
    //
    // The canonical 32-lane reduction maps onto exactly two zmm
    // accumulators (`z0` = strides 0..16, `z1` = strides 16..32), so the
    // tree's `t` level is a single 16-lane add, `u` a 256-bit extract +
    // add, `v` a 128-bit extract + add, and the finish is the shared
    // [`combine_v4`]. Element-wise kernels are the scalar expression per
    // lane, as everywhere else. No FMA, as everywhere else.

    /// Fixed combine tree, AVX-512 packing: `z0` holds strides 0..16,
    /// `z1` strides 16..32.
    #[inline]
    #[target_feature(enable = "avx512f,avx512dq")]
    unsafe fn tree_avx512(z0: __m512, z1: __m512) -> __m128 {
        let t = _mm512_add_ps(z0, z1); // t[0..16]
                                       // u[0..8] = t[0..8] + t[8..16]
        let u = _mm256_add_ps(_mm512_castps512_ps256(t), _mm512_extractf32x8_ps::<1>(t));
        // v[0..4] = u[0..4] + u[4..8]
        _mm_add_ps(_mm256_castps256_ps128(u), _mm256_extractf128_ps::<1>(u))
    }

    #[target_feature(enable = "avx512f,avx512dq")]
    pub(super) unsafe fn dot_avx512(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let chunks = n / 32;
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut z0 = _mm512_setzero_ps();
        let mut z1 = _mm512_setzero_ps();
        for c in 0..chunks {
            let base = c * 32;
            z0 = _mm512_add_ps(
                z0,
                _mm512_mul_ps(_mm512_loadu_ps(pa.add(base)), _mm512_loadu_ps(pb.add(base))),
            );
            z1 = _mm512_add_ps(
                z1,
                _mm512_mul_ps(
                    _mm512_loadu_ps(pa.add(base + 16)),
                    _mm512_loadu_ps(pb.add(base + 16)),
                ),
            );
        }
        let mut total = combine_v4(tree_avx512(z0, z1));
        for i in chunks * 32..n {
            total += a[i] * b[i];
        }
        total
    }

    #[target_feature(enable = "avx512f,avx512dq")]
    pub(super) unsafe fn sq_dist_avx512(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let chunks = n / 32;
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut z0 = _mm512_setzero_ps();
        let mut z1 = _mm512_setzero_ps();
        for c in 0..chunks {
            let base = c * 32;
            let d0 = _mm512_sub_ps(_mm512_loadu_ps(pa.add(base)), _mm512_loadu_ps(pb.add(base)));
            z0 = _mm512_add_ps(z0, _mm512_mul_ps(d0, d0));
            let d1 = _mm512_sub_ps(
                _mm512_loadu_ps(pa.add(base + 16)),
                _mm512_loadu_ps(pb.add(base + 16)),
            );
            z1 = _mm512_add_ps(z1, _mm512_mul_ps(d1, d1));
        }
        let mut total = combine_v4(tree_avx512(z0, z1));
        for i in chunks * 32..n {
            let d = a[i] - b[i];
            total += d * d;
        }
        total
    }

    #[target_feature(enable = "avx512f,avx512dq")]
    pub(super) unsafe fn axpy_avx512(out: &mut [f32], a: f32, b: &[f32]) {
        let n = out.len();
        let va = _mm512_set1_ps(a);
        let (po, pb) = (out.as_mut_ptr(), b.as_ptr());
        let mut j = 0;
        while j + 16 <= n {
            let o = _mm512_loadu_ps(po.add(j));
            let t = _mm512_mul_ps(va, _mm512_loadu_ps(pb.add(j)));
            _mm512_storeu_ps(po.add(j), _mm512_add_ps(o, t));
            j += 16;
        }
        while j < n {
            out[j] += a * b[j];
            j += 1;
        }
    }

    #[target_feature(enable = "avx512f,avx512dq")]
    pub(super) unsafe fn axpy4_avx512(
        out: &mut [f32],
        a: [f32; 4],
        b0: &[f32],
        b1: &[f32],
        b2: &[f32],
        b3: &[f32],
    ) {
        let n = out.len();
        let va0 = _mm512_set1_ps(a[0]);
        let va1 = _mm512_set1_ps(a[1]);
        let va2 = _mm512_set1_ps(a[2]);
        let va3 = _mm512_set1_ps(a[3]);
        let po = out.as_mut_ptr();
        let (p0, p1, p2, p3) = (b0.as_ptr(), b1.as_ptr(), b2.as_ptr(), b3.as_ptr());
        let mut j = 0;
        // Two independent 16-lane chains per iteration (same per-element
        // operation order as everywhere else; the unroll only breaks the
        // register dependency between consecutive chunks).
        while j + 32 <= n {
            let mut t = _mm512_mul_ps(va0, _mm512_loadu_ps(p0.add(j)));
            let mut u = _mm512_mul_ps(va0, _mm512_loadu_ps(p0.add(j + 16)));
            t = _mm512_add_ps(t, _mm512_mul_ps(va1, _mm512_loadu_ps(p1.add(j))));
            u = _mm512_add_ps(u, _mm512_mul_ps(va1, _mm512_loadu_ps(p1.add(j + 16))));
            t = _mm512_add_ps(t, _mm512_mul_ps(va2, _mm512_loadu_ps(p2.add(j))));
            u = _mm512_add_ps(u, _mm512_mul_ps(va2, _mm512_loadu_ps(p2.add(j + 16))));
            t = _mm512_add_ps(t, _mm512_mul_ps(va3, _mm512_loadu_ps(p3.add(j))));
            u = _mm512_add_ps(u, _mm512_mul_ps(va3, _mm512_loadu_ps(p3.add(j + 16))));
            _mm512_storeu_ps(po.add(j), _mm512_add_ps(_mm512_loadu_ps(po.add(j)), t));
            _mm512_storeu_ps(
                po.add(j + 16),
                _mm512_add_ps(_mm512_loadu_ps(po.add(j + 16)), u),
            );
            j += 32;
        }
        while j + 16 <= n {
            let mut t = _mm512_mul_ps(va0, _mm512_loadu_ps(p0.add(j)));
            t = _mm512_add_ps(t, _mm512_mul_ps(va1, _mm512_loadu_ps(p1.add(j))));
            t = _mm512_add_ps(t, _mm512_mul_ps(va2, _mm512_loadu_ps(p2.add(j))));
            t = _mm512_add_ps(t, _mm512_mul_ps(va3, _mm512_loadu_ps(p3.add(j))));
            _mm512_storeu_ps(po.add(j), _mm512_add_ps(_mm512_loadu_ps(po.add(j)), t));
            j += 16;
        }
        while j < n {
            out[j] += a[0] * b0[j] + a[1] * b1[j] + a[2] * b2[j] + a[3] * b3[j];
            j += 1;
        }
    }

    #[target_feature(enable = "avx512f,avx512dq")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn axpy4x2_avx512(
        out0: &mut [f32],
        out1: &mut [f32],
        a0: [f32; 4],
        a1: [f32; 4],
        b0: &[f32],
        b1: &[f32],
        b2: &[f32],
        b3: &[f32],
    ) {
        let n = out0.len();
        let va = [
            _mm512_set1_ps(a0[0]),
            _mm512_set1_ps(a0[1]),
            _mm512_set1_ps(a0[2]),
            _mm512_set1_ps(a0[3]),
            _mm512_set1_ps(a1[0]),
            _mm512_set1_ps(a1[1]),
            _mm512_set1_ps(a1[2]),
            _mm512_set1_ps(a1[3]),
        ];
        let (q0, q1) = (out0.as_mut_ptr(), out1.as_mut_ptr());
        let (p0, p1, p2, p3) = (b0.as_ptr(), b1.as_ptr(), b2.as_ptr(), b3.as_ptr());
        let mut j = 0;
        while j + 16 <= n {
            let r0 = _mm512_loadu_ps(p0.add(j));
            let r1 = _mm512_loadu_ps(p1.add(j));
            let r2 = _mm512_loadu_ps(p2.add(j));
            let r3 = _mm512_loadu_ps(p3.add(j));
            let mut t = _mm512_mul_ps(va[0], r0);
            let mut u = _mm512_mul_ps(va[4], r0);
            t = _mm512_add_ps(t, _mm512_mul_ps(va[1], r1));
            u = _mm512_add_ps(u, _mm512_mul_ps(va[5], r1));
            t = _mm512_add_ps(t, _mm512_mul_ps(va[2], r2));
            u = _mm512_add_ps(u, _mm512_mul_ps(va[6], r2));
            t = _mm512_add_ps(t, _mm512_mul_ps(va[3], r3));
            u = _mm512_add_ps(u, _mm512_mul_ps(va[7], r3));
            _mm512_storeu_ps(q0.add(j), _mm512_add_ps(_mm512_loadu_ps(q0.add(j)), t));
            _mm512_storeu_ps(q1.add(j), _mm512_add_ps(_mm512_loadu_ps(q1.add(j)), u));
            j += 16;
        }
        while j < n {
            out0[j] += a0[0] * b0[j] + a0[1] * b1[j] + a0[2] * b2[j] + a0[3] * b3[j];
            out1[j] += a1[0] * b0[j] + a1[1] * b1[j] + a1[2] * b2[j] + a1[3] * b3[j];
            j += 1;
        }
    }

    // Four rows per B fetch: 16 resident coefficient splats + 4 b loads
    // + 4 independent mul/add chains fit comfortably in 32 zmm
    // registers, so the widest blocking runs on this tier only.
    #[target_feature(enable = "avx512f,avx512dq")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn axpy4x4_avx512(
        out0: &mut [f32],
        out1: &mut [f32],
        out2: &mut [f32],
        out3: &mut [f32],
        a: [[f32; 4]; 4],
        b0: &[f32],
        b1: &[f32],
        b2: &[f32],
        b3: &[f32],
    ) {
        let n = out0.len();
        let mut va = [[_mm512_setzero_ps(); 4]; 4];
        for r in 0..4 {
            for c in 0..4 {
                va[r][c] = _mm512_set1_ps(a[r][c]);
            }
        }
        let qs = [
            out0.as_mut_ptr(),
            out1.as_mut_ptr(),
            out2.as_mut_ptr(),
            out3.as_mut_ptr(),
        ];
        let (p0, p1, p2, p3) = (b0.as_ptr(), b1.as_ptr(), b2.as_ptr(), b3.as_ptr());
        let mut j = 0;
        while j + 16 <= n {
            let r0 = _mm512_loadu_ps(p0.add(j));
            let r1 = _mm512_loadu_ps(p1.add(j));
            let r2 = _mm512_loadu_ps(p2.add(j));
            let r3 = _mm512_loadu_ps(p3.add(j));
            let mut t0 = _mm512_mul_ps(va[0][0], r0);
            let mut t1 = _mm512_mul_ps(va[1][0], r0);
            let mut t2 = _mm512_mul_ps(va[2][0], r0);
            let mut t3 = _mm512_mul_ps(va[3][0], r0);
            t0 = _mm512_add_ps(t0, _mm512_mul_ps(va[0][1], r1));
            t1 = _mm512_add_ps(t1, _mm512_mul_ps(va[1][1], r1));
            t2 = _mm512_add_ps(t2, _mm512_mul_ps(va[2][1], r1));
            t3 = _mm512_add_ps(t3, _mm512_mul_ps(va[3][1], r1));
            t0 = _mm512_add_ps(t0, _mm512_mul_ps(va[0][2], r2));
            t1 = _mm512_add_ps(t1, _mm512_mul_ps(va[1][2], r2));
            t2 = _mm512_add_ps(t2, _mm512_mul_ps(va[2][2], r2));
            t3 = _mm512_add_ps(t3, _mm512_mul_ps(va[3][2], r2));
            t0 = _mm512_add_ps(t0, _mm512_mul_ps(va[0][3], r3));
            t1 = _mm512_add_ps(t1, _mm512_mul_ps(va[1][3], r3));
            t2 = _mm512_add_ps(t2, _mm512_mul_ps(va[2][3], r3));
            t3 = _mm512_add_ps(t3, _mm512_mul_ps(va[3][3], r3));
            _mm512_storeu_ps(
                qs[0].add(j),
                _mm512_add_ps(_mm512_loadu_ps(qs[0].add(j)), t0),
            );
            _mm512_storeu_ps(
                qs[1].add(j),
                _mm512_add_ps(_mm512_loadu_ps(qs[1].add(j)), t1),
            );
            _mm512_storeu_ps(
                qs[2].add(j),
                _mm512_add_ps(_mm512_loadu_ps(qs[2].add(j)), t2),
            );
            _mm512_storeu_ps(
                qs[3].add(j),
                _mm512_add_ps(_mm512_loadu_ps(qs[3].add(j)), t3),
            );
            j += 16;
        }
        while j < n {
            out0[j] += a[0][0] * b0[j] + a[0][1] * b1[j] + a[0][2] * b2[j] + a[0][3] * b3[j];
            out1[j] += a[1][0] * b0[j] + a[1][1] * b1[j] + a[1][2] * b2[j] + a[1][3] * b3[j];
            out2[j] += a[2][0] * b0[j] + a[2][1] * b1[j] + a[2][2] * b2[j] + a[2][3] * b3[j];
            out3[j] += a[3][0] * b0[j] + a[3][1] * b1[j] + a[3][2] * b2[j] + a[3][3] * b3[j];
            j += 1;
        }
    }

    #[target_feature(enable = "avx512f,avx512dq")]
    pub(super) unsafe fn dist_row_avx512(
        ax: f64,
        ay: f64,
        bx: &[f64],
        by: &[f64],
        out: &mut [f64],
    ) {
        let n = out.len();
        let vax = _mm512_set1_pd(ax);
        let vay = _mm512_set1_pd(ay);
        let (px, py, po) = (bx.as_ptr(), by.as_ptr(), out.as_mut_ptr());
        let mut j = 0;
        while j + 8 <= n {
            let dx = _mm512_sub_pd(vax, _mm512_loadu_pd(px.add(j)));
            let dy = _mm512_sub_pd(vay, _mm512_loadu_pd(py.add(j)));
            let s = _mm512_add_pd(_mm512_mul_pd(dx, dx), _mm512_mul_pd(dy, dy));
            _mm512_storeu_pd(po.add(j), _mm512_sqrt_pd(s));
            j += 8;
        }
        while j < n {
            let dx = ax - bx[j];
            let dy = ay - by[j];
            out[j] = (dx * dx + dy * dy).sqrt();
            j += 1;
        }
    }

    #[target_feature(enable = "avx512f,avx512dq")]
    pub(super) unsafe fn elem_min_avx512(a: &[f64], b: &[f64], out: &mut [f64]) {
        let n = out.len();
        let (pa, pb, po) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
        let mut j = 0;
        while j + 8 <= n {
            // vminpd zmm keeps the classic `a < b ? a : b` semantics.
            let m = _mm512_min_pd(_mm512_loadu_pd(pa.add(j)), _mm512_loadu_pd(pb.add(j)));
            _mm512_storeu_pd(po.add(j), m);
            j += 8;
        }
        while j < n {
            out[j] = super::scalar::min_pd(a[j], b[j]);
            j += 1;
        }
    }

    #[target_feature(enable = "avx512f,avx512dq")]
    pub(super) unsafe fn elem_add_avx512(a: &[f64], b: &[f64], out: &mut [f64]) {
        let n = out.len();
        let (pa, pb, po) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
        let mut j = 0;
        while j + 8 <= n {
            let m = _mm512_add_pd(_mm512_loadu_pd(pa.add(j)), _mm512_loadu_pd(pb.add(j)));
            _mm512_storeu_pd(po.add(j), m);
            j += 8;
        }
        while j < n {
            out[j] = a[j] + b[j];
            j += 1;
        }
    }

    #[target_feature(enable = "avx512f,avx512dq")]
    pub(super) unsafe fn add_scalar_avx512(a: &[f64], s: f64, out: &mut [f64]) {
        let n = out.len();
        let vs = _mm512_set1_pd(s);
        let (pa, po) = (a.as_ptr(), out.as_mut_ptr());
        let mut j = 0;
        while j + 8 <= n {
            _mm512_storeu_pd(po.add(j), _mm512_add_pd(_mm512_loadu_pd(pa.add(j)), vs));
            j += 8;
        }
        while j < n {
            out[j] = a[j] + s;
            j += 1;
        }
    }

    #[target_feature(enable = "avx512f,avx512dq")]
    pub(super) unsafe fn matches_row_avx512(
        ax: f64,
        ay: f64,
        eps: f64,
        bx: &[f64],
        by: &[f64],
        out: &mut [u8],
    ) {
        let n = out.len();
        let vax = _mm512_set1_pd(ax);
        let vay = _mm512_set1_pd(ay);
        let veps = _mm512_set1_pd(eps);
        let (px, py) = (bx.as_ptr(), by.as_ptr());
        let mut j = 0;
        while j + 8 <= n {
            let dx = _mm512_abs_pd(_mm512_sub_pd(vax, _mm512_loadu_pd(px.add(j))));
            let dy = _mm512_abs_pd(_mm512_sub_pd(vay, _mm512_loadu_pd(py.add(j))));
            let bits = _mm512_cmp_pd_mask::<_CMP_LE_OQ>(dx, veps)
                & _mm512_cmp_pd_mask::<_CMP_LE_OQ>(dy, veps);
            for l in 0..8 {
                out[j + l] = (bits >> l) & 1;
            }
            j += 8;
        }
        while j < n {
            out[j] = u8::from((ax - bx[j]).abs() <= eps && (ay - by[j]).abs() <= eps);
            j += 1;
        }
    }
}

// ---------------------------------------------------------------------
// aarch64 NEON kernels (baseline on aarch64; compiled only there).
// ---------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
mod neon {
    use std::arch::aarch64::*;

    /// Fixed combine tree, NEON register packing: `s[r]` holds strides
    /// `4r..4r+4` (same packing as SSE2).
    #[inline]
    unsafe fn combine_tree(s: [float32x4_t; 8]) -> f32 {
        let d0 = vaddq_f32(s[0], s[4]);
        let d1 = vaddq_f32(s[1], s[5]);
        let d2 = vaddq_f32(s[2], s[6]);
        let d3 = vaddq_f32(s[3], s[7]);
        let e0 = vaddq_f32(d0, d2);
        let e1 = vaddq_f32(d1, d3);
        let v = vaddq_f32(e0, e1); // v[0..4]
        let v0 = vgetq_lane_f32::<0>(v);
        let v1 = vgetq_lane_f32::<1>(v);
        let v2 = vgetq_lane_f32::<2>(v);
        let v3 = vgetq_lane_f32::<3>(v);
        (v0 + v2) + (v1 + v3)
    }

    pub(super) unsafe fn dot_neon(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let chunks = n / 32;
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut s = [vdupq_n_f32(0.0); 8];
        for c in 0..chunks {
            let base = c * 32;
            for (r, acc) in s.iter_mut().enumerate() {
                let x = vld1q_f32(pa.add(base + 4 * r));
                let y = vld1q_f32(pb.add(base + 4 * r));
                *acc = vaddq_f32(*acc, vmulq_f32(x, y));
            }
        }
        let mut total = combine_tree(s);
        for i in chunks * 32..n {
            total += a[i] * b[i];
        }
        total
    }

    pub(super) unsafe fn sq_dist_neon(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let chunks = n / 32;
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut s = [vdupq_n_f32(0.0); 8];
        for c in 0..chunks {
            let base = c * 32;
            for (r, acc) in s.iter_mut().enumerate() {
                let x = vld1q_f32(pa.add(base + 4 * r));
                let y = vld1q_f32(pb.add(base + 4 * r));
                let d = vsubq_f32(x, y);
                *acc = vaddq_f32(*acc, vmulq_f32(d, d));
            }
        }
        let mut total = combine_tree(s);
        for i in chunks * 32..n {
            let d = a[i] - b[i];
            total += d * d;
        }
        total
    }

    pub(super) unsafe fn axpy_neon(out: &mut [f32], a: f32, b: &[f32]) {
        let n = out.len();
        let va = vdupq_n_f32(a);
        let (po, pb) = (out.as_mut_ptr(), b.as_ptr());
        let mut j = 0;
        while j + 4 <= n {
            let o = vld1q_f32(po.add(j));
            let t = vmulq_f32(va, vld1q_f32(pb.add(j)));
            vst1q_f32(po.add(j), vaddq_f32(o, t));
            j += 4;
        }
        while j < n {
            out[j] += a * b[j];
            j += 1;
        }
    }

    pub(super) unsafe fn axpy4_neon(
        out: &mut [f32],
        a: [f32; 4],
        b0: &[f32],
        b1: &[f32],
        b2: &[f32],
        b3: &[f32],
    ) {
        let n = out.len();
        let va0 = vdupq_n_f32(a[0]);
        let va1 = vdupq_n_f32(a[1]);
        let va2 = vdupq_n_f32(a[2]);
        let va3 = vdupq_n_f32(a[3]);
        let po = out.as_mut_ptr();
        let (p0, p1, p2, p3) = (b0.as_ptr(), b1.as_ptr(), b2.as_ptr(), b3.as_ptr());
        let mut j = 0;
        while j + 4 <= n {
            let mut t = vmulq_f32(va0, vld1q_f32(p0.add(j)));
            t = vaddq_f32(t, vmulq_f32(va1, vld1q_f32(p1.add(j))));
            t = vaddq_f32(t, vmulq_f32(va2, vld1q_f32(p2.add(j))));
            t = vaddq_f32(t, vmulq_f32(va3, vld1q_f32(p3.add(j))));
            vst1q_f32(po.add(j), vaddq_f32(vld1q_f32(po.add(j)), t));
            j += 4;
        }
        while j < n {
            out[j] += a[0] * b0[j] + a[1] * b1[j] + a[2] * b2[j] + a[3] * b3[j];
            j += 1;
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn axpy4x2_neon(
        out0: &mut [f32],
        out1: &mut [f32],
        a0: [f32; 4],
        a1: [f32; 4],
        b0: &[f32],
        b1: &[f32],
        b2: &[f32],
        b3: &[f32],
    ) {
        let n = out0.len();
        let va = [
            vdupq_n_f32(a0[0]),
            vdupq_n_f32(a0[1]),
            vdupq_n_f32(a0[2]),
            vdupq_n_f32(a0[3]),
            vdupq_n_f32(a1[0]),
            vdupq_n_f32(a1[1]),
            vdupq_n_f32(a1[2]),
            vdupq_n_f32(a1[3]),
        ];
        let (q0, q1) = (out0.as_mut_ptr(), out1.as_mut_ptr());
        let (p0, p1, p2, p3) = (b0.as_ptr(), b1.as_ptr(), b2.as_ptr(), b3.as_ptr());
        let mut j = 0;
        while j + 4 <= n {
            let r0 = vld1q_f32(p0.add(j));
            let r1 = vld1q_f32(p1.add(j));
            let r2 = vld1q_f32(p2.add(j));
            let r3 = vld1q_f32(p3.add(j));
            let mut t = vmulq_f32(va[0], r0);
            let mut u = vmulq_f32(va[4], r0);
            t = vaddq_f32(t, vmulq_f32(va[1], r1));
            u = vaddq_f32(u, vmulq_f32(va[5], r1));
            t = vaddq_f32(t, vmulq_f32(va[2], r2));
            u = vaddq_f32(u, vmulq_f32(va[6], r2));
            t = vaddq_f32(t, vmulq_f32(va[3], r3));
            u = vaddq_f32(u, vmulq_f32(va[7], r3));
            vst1q_f32(q0.add(j), vaddq_f32(vld1q_f32(q0.add(j)), t));
            vst1q_f32(q1.add(j), vaddq_f32(vld1q_f32(q1.add(j)), u));
            j += 4;
        }
        while j < n {
            out0[j] += a0[0] * b0[j] + a0[1] * b1[j] + a0[2] * b2[j] + a0[3] * b3[j];
            out1[j] += a1[0] * b0[j] + a1[1] * b1[j] + a1[2] * b2[j] + a1[3] * b3[j];
            j += 1;
        }
    }

    pub(super) unsafe fn dist_row_neon(ax: f64, ay: f64, bx: &[f64], by: &[f64], out: &mut [f64]) {
        let n = out.len();
        let vax = vdupq_n_f64(ax);
        let vay = vdupq_n_f64(ay);
        let (px, py, po) = (bx.as_ptr(), by.as_ptr(), out.as_mut_ptr());
        let mut j = 0;
        while j + 2 <= n {
            let dx = vsubq_f64(vax, vld1q_f64(px.add(j)));
            let dy = vsubq_f64(vay, vld1q_f64(py.add(j)));
            let s = vaddq_f64(vmulq_f64(dx, dx), vmulq_f64(dy, dy));
            vst1q_f64(po.add(j), vsqrtq_f64(s));
            j += 2;
        }
        while j < n {
            let dx = ax - bx[j];
            let dy = ay - by[j];
            out[j] = (dx * dx + dy * dy).sqrt();
            j += 1;
        }
    }

    pub(super) unsafe fn elem_min_neon(a: &[f64], b: &[f64], out: &mut [f64]) {
        let n = out.len();
        let (pa, pb, po) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
        let mut j = 0;
        while j + 2 <= n {
            // `vbslq` on the `a < b` mask reproduces minpd semantics
            // exactly (returns `b` on equality), unlike `vminq`'s NaN
            // propagation.
            let x = vld1q_f64(pa.add(j));
            let y = vld1q_f64(pb.add(j));
            let lt = vcltq_f64(x, y);
            vst1q_f64(po.add(j), vbslq_f64(lt, x, y));
            j += 2;
        }
        while j < n {
            out[j] = super::scalar::min_pd(a[j], b[j]);
            j += 1;
        }
    }

    pub(super) unsafe fn elem_add_neon(a: &[f64], b: &[f64], out: &mut [f64]) {
        let n = out.len();
        let (pa, pb, po) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
        let mut j = 0;
        while j + 2 <= n {
            vst1q_f64(
                po.add(j),
                vaddq_f64(vld1q_f64(pa.add(j)), vld1q_f64(pb.add(j))),
            );
            j += 2;
        }
        while j < n {
            out[j] = a[j] + b[j];
            j += 1;
        }
    }

    pub(super) unsafe fn add_scalar_neon(a: &[f64], s: f64, out: &mut [f64]) {
        let n = out.len();
        let vs = vdupq_n_f64(s);
        let (pa, po) = (a.as_ptr(), out.as_mut_ptr());
        let mut j = 0;
        while j + 2 <= n {
            vst1q_f64(po.add(j), vaddq_f64(vld1q_f64(pa.add(j)), vs));
            j += 2;
        }
        while j < n {
            out[j] = a[j] + s;
            j += 1;
        }
    }

    pub(super) unsafe fn matches_row_neon(
        ax: f64,
        ay: f64,
        eps: f64,
        bx: &[f64],
        by: &[f64],
        out: &mut [u8],
    ) {
        let n = out.len();
        let vax = vdupq_n_f64(ax);
        let vay = vdupq_n_f64(ay);
        let veps = vdupq_n_f64(eps);
        let (px, py) = (bx.as_ptr(), by.as_ptr());
        let mut j = 0;
        while j + 2 <= n {
            let dx = vabsq_f64(vsubq_f64(vax, vld1q_f64(px.add(j))));
            let dy = vabsq_f64(vsubq_f64(vay, vld1q_f64(py.add(j))));
            let m = vandq_u64(vcleq_f64(dx, veps), vcleq_f64(dy, veps));
            out[j] = (vgetq_lane_u64::<0>(m) & 1) as u8;
            out[j + 1] = (vgetq_lane_u64::<1>(m) & 1) as u8;
            j += 2;
        }
        while j < n {
            out[j] = u8::from((ax - bx[j]).abs() <= eps && (ay - by[j]).abs() <= eps);
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_documented_values() {
        assert_eq!(Backend::parse("off"), Some(Backend::Scalar));
        assert_eq!(Backend::parse("scalar"), Some(Backend::Scalar));
        assert_eq!(Backend::parse("SSE"), Some(Backend::Sse2));
        assert_eq!(Backend::parse("sse2"), Some(Backend::Sse2));
        assert_eq!(Backend::parse("avx2"), Some(Backend::Avx2));
        assert_eq!(Backend::parse("avx512"), Some(Backend::Avx512));
        assert_eq!(Backend::parse("AVX512F"), Some(Backend::Avx512));
        assert_eq!(Backend::parse("neon"), Some(Backend::Neon));
        assert_eq!(Backend::parse("wat"), None);
    }

    #[test]
    fn detected_backend_is_supported_and_scalar_always_is() {
        assert!(detected().supported());
        assert!(Backend::Scalar.supported());
        #[cfg(target_arch = "x86_64")]
        assert!(Backend::Sse2.supported());
        #[cfg(target_arch = "x86_64")]
        assert!(!Backend::Neon.supported());
    }

    #[test]
    fn set_backend_rejects_unsupported() {
        #[cfg(target_arch = "x86_64")]
        assert!(!set_backend(Backend::Neon));
        #[cfg(target_arch = "aarch64")]
        assert!(!set_backend(Backend::Avx2));
        assert!(set_backend(detected()));
    }

    /// The combine tree is the documented dataflow: checked against a
    /// hand-evaluated instance where every accumulator is distinct.
    #[test]
    fn combine_tree_shape() {
        let mut acc = [0.0f32; 32];
        for (l, a) in acc.iter_mut().enumerate() {
            *a = (l + 1) as f32;
        }
        let t: Vec<f32> = (0..16).map(|k| acc[k] + acc[k + 16]).collect();
        let u: Vec<f32> = (0..8).map(|k| t[k] + t[k + 8]).collect();
        let v: Vec<f32> = (0..4).map(|k| u[k] + u[k + 4]).collect();
        let expect = (v[0] + v[2]) + (v[1] + v[3]);
        assert_eq!(scalar::combine(&acc), expect);
        assert_eq!(expect, 32.0 * 33.0 / 2.0); // Σ 1..=32
    }

    #[test]
    fn scalar_dot_short_lengths_are_plain_serial_sums() {
        // Below one 32-chunk the reduction is the ascending serial sum.
        let a = [1.0f32, 2.0, 3.0];
        let b = [4.0f32, 5.0, 6.0];
        assert_eq!(dot_f32_on(Backend::Scalar, &a, &b), ((4.0 + 10.0) + 18.0));
        assert_eq!(dot_f32_on(Backend::Scalar, &[], &[]), 0.0);
    }
}
