//! Scoped-thread helpers shared by the matrix kernels and the training
//! loop.
//!
//! All parallelism in this workspace funnels through two primitives:
//!
//! * [`par_row_panels`] — splits a row-major buffer into one contiguous
//!   row-panel per worker and runs the same kernel on each panel. The
//!   matrix kernels use it to fan out over output rows.
//! * [`par_map`] — maps a function over a slice, sharding contiguous
//!   index ranges across workers and returning results in input order.
//!   Batch encoding and data-parallel gradient computation use it.
//!
//! # Worker count
//!
//! The pool size is resolved once, lazily: the `T2VEC_THREADS`
//! environment variable wins if set to a positive integer, otherwise
//! [`std::thread::available_parallelism`]. Tests and embedders can
//! override it at runtime with [`set_threads`].
//!
//! # Determinism
//!
//! Work is always partitioned into *contiguous index ranges*, and both
//! helpers guarantee that each index is processed by exactly one worker
//! with the same per-index code path regardless of the worker count.
//! Kernels built on top keep every floating-point reduction inside a
//! single index's computation, so results are bit-identical for 1 and N
//! threads.
//!
//! # Nesting
//!
//! Threads are OS threads spawned per call via [`std::thread::scope`]
//! (no persistent pool, so there is no global state to poison). To stop
//! a parallel region from recursively fanning out — e.g. a worker
//! computing gradients calls `matmul`, which would otherwise spawn its
//! own workers — a thread-local flag marks worker threads, and any
//! helper invoked on a marked thread runs inline.

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use t2vec_obs as obs;

/// Hard upper bound on the worker count; protects against a typo'd
/// `T2VEC_THREADS=4000` spawning thousands of OS threads.
const MAX_THREADS: usize = 64;

/// Resolved worker count; `0` means "not resolved yet".
static CONFIGURED: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Set while the current thread is executing inside a parallel
    /// region (either as a spawned worker or as the caller running its
    /// own share); suppresses nested fan-out.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Parses a `T2VEC_THREADS`-style value: positive integer, clamped to
/// [`MAX_THREADS`]. Returns `None` for anything unusable.
fn parse_threads(raw: &str) -> Option<usize> {
    match raw.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Some(n.min(MAX_THREADS)),
        _ => None,
    }
}

fn resolve_default() -> usize {
    if let Some(n) = std::env::var("T2VEC_THREADS")
        .ok()
        .as_deref()
        .and_then(parse_threads)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(MAX_THREADS)
}

/// The number of worker threads parallel regions will use.
///
/// Resolution order: [`set_threads`] override, then the
/// `T2VEC_THREADS` environment variable, then
/// [`std::thread::available_parallelism`]. The value is cached after
/// the first call.
pub fn num_threads() -> usize {
    let configured = CONFIGURED.load(Ordering::Relaxed);
    if configured != 0 {
        return configured;
    }
    let n = resolve_default();
    // A benign race: concurrent first calls resolve the same value.
    CONFIGURED.store(n, Ordering::Relaxed);
    n
}

/// Overrides the worker count for the whole process (clamped to
/// `1..=64`). Intended for tests and embedders that manage their own
/// thread budget.
pub fn set_threads(n: usize) {
    CONFIGURED.store(n.clamp(1, MAX_THREADS), Ordering::Relaxed);
}

/// Returns `true` on a thread that is currently inside a parallel
/// region; helpers called from such a thread run inline instead of
/// fanning out.
pub fn in_parallel_worker() -> bool {
    IN_WORKER.with(|w| w.get())
}

/// Worker count a region over `units` independent units would use right
/// now: 1 when nested or when there is at most one unit.
fn effective_workers(units: usize) -> usize {
    if in_parallel_worker() {
        return 1;
    }
    num_threads().min(units).max(1)
}

/// Splits `0..total` into `parts` contiguous, non-empty, balanced
/// ranges (sizes differ by at most one). `parts` must be `>= 1` and
/// `<= total` unless `total == 0`, in which case one empty range is
/// returned.
fn split_ranges(total: usize, parts: usize) -> Vec<Range<usize>> {
    if total == 0 {
        return std::iter::once(0..0).collect();
    }
    let parts = parts.clamp(1, total);
    let base = total / parts;
    let extra = total % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// Region-occupancy metrics: how often parallel regions open, how often
/// they collapse to the inline path (nested or single-unit), and the
/// worker-count distribution of the regions that do fan out. Plain
/// atomic counters — values are deterministic functions of the
/// workload and thread configuration, and they only flow to obs sinks.
fn record_region(workers: usize) {
    obs::counter!("tensor.par.regions").incr();
    if workers <= 1 {
        obs::counter!("tensor.par.inline_regions").incr();
    } else {
        obs::histogram!("tensor.par.workers").record(workers as u64);
    }
}

/// Runs `body` with the nested-parallelism flag set, restoring it after.
fn with_worker_flag<T>(body: impl FnOnce() -> T) -> T {
    IN_WORKER.with(|w| {
        let prev = w.replace(true);
        let out = body();
        w.set(prev);
        out
    })
}

/// Splits `out` — a row-major buffer of `rows` rows, each `row_len`
/// long — into one contiguous row-panel per worker and runs
/// `kernel(row_range, panel)` on each, in parallel.
///
/// Every worker (including the single-threaded fallback) executes the
/// *same* kernel over its range, so per-element results do not depend
/// on the worker count.
///
/// # Panics
/// Panics if `out.len() != rows * row_len`.
pub fn par_row_panels<F>(out: &mut [f32], rows: usize, row_len: usize, kernel: F)
where
    F: Fn(Range<usize>, &mut [f32]) + Sync,
{
    assert_eq!(out.len(), rows * row_len, "panel buffer/shape mismatch");
    let workers = effective_workers(rows);
    record_region(workers);
    if workers <= 1 {
        with_worker_flag(|| kernel(0..rows, out));
        return;
    }
    let ranges = split_ranges(rows, workers);
    // Carve the buffer into per-range panels at row boundaries.
    let mut panels: Vec<(Range<usize>, &mut [f32])> = Vec::with_capacity(ranges.len());
    let mut rest = out;
    for r in ranges {
        let (panel, tail) = rest.split_at_mut(r.len() * row_len);
        panels.push((r, panel));
        rest = tail;
    }
    std::thread::scope(|s| {
        let kernel = &kernel;
        // The caller runs the first panel itself; workers take the rest.
        let mut panels = panels.into_iter();
        let (head_range, head_panel) = panels.next().expect("at least one panel");
        for (r, panel) in panels {
            s.spawn(move || with_worker_flag(|| kernel(r, panel)));
        }
        with_worker_flag(|| kernel(head_range, head_panel));
    });
}

/// Maps `f` over `items` in parallel, returning results in input order.
///
/// Items are sharded as contiguous index ranges across workers; `f`
/// receives `(index, &item)`. Falls back to a plain serial map when
/// nested inside another parallel region or when only one worker is
/// available.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let workers = effective_workers(items.len());
    record_region(workers);
    if workers <= 1 {
        return with_worker_flag(|| items.iter().enumerate().map(|(i, t)| f(i, t)).collect());
    }
    let ranges = split_ranges(items.len(), workers);
    let mut shards: Vec<Vec<U>> = Vec::with_capacity(ranges.len());
    std::thread::scope(|s| {
        let f = &f;
        let map_range = move |r: Range<usize>| -> Vec<U> {
            with_worker_flag(|| r.map(|i| f(i, &items[i])).collect())
        };
        let mut ranges = ranges.into_iter();
        let head = ranges.next().expect("at least one range");
        let handles: Vec<_> = ranges.map(|r| s.spawn(move || map_range(r))).collect();
        shards.push(map_range(head));
        for h in handles {
            shards.push(h.join().expect("parallel worker panicked"));
        }
    });
    shards.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads("4"), Some(4));
        assert_eq!(parse_threads(" 2 "), Some(2));
        assert_eq!(parse_threads("1"), Some(1));
        assert_eq!(parse_threads("100000"), Some(MAX_THREADS));
        assert_eq!(parse_threads("0"), None);
        assert_eq!(parse_threads("-3"), None);
        assert_eq!(parse_threads("two"), None);
        assert_eq!(parse_threads(""), None);
    }

    #[test]
    fn split_ranges_is_a_balanced_partition() {
        for total in [1usize, 2, 7, 64, 100] {
            for parts in [1usize, 2, 3, 8, 200] {
                let ranges = split_ranges(total, parts);
                assert_eq!(ranges.len(), parts.clamp(1, total));
                assert_eq!(ranges[0].start, 0);
                assert_eq!(ranges.last().unwrap().end, total);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                }
                let (min, max) = ranges
                    .iter()
                    .map(|r| r.len())
                    .fold((usize::MAX, 0), |(lo, hi), l| (lo.min(l), hi.max(l)));
                assert!(max - min <= 1, "unbalanced: {ranges:?}");
            }
        }
    }

    #[test]
    fn split_ranges_handles_empty_input() {
        assert_eq!(split_ranges(0, 4), vec![0..0]);
    }

    #[test]
    fn par_map_preserves_input_order() {
        set_threads(4);
        let items: Vec<usize> = (0..103).collect();
        let out = par_map(&items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..103).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_row_panels_covers_every_row_once() {
        set_threads(3);
        let rows = 17;
        let row_len = 5;
        let mut buf = vec![0.0f32; rows * row_len];
        par_row_panels(&mut buf, rows, row_len, |range, panel| {
            for (local, global) in range.enumerate() {
                for c in 0..row_len {
                    panel[local * row_len + c] += (global * row_len + c) as f32 + 1.0;
                }
            }
        });
        let expect: Vec<f32> = (0..rows * row_len).map(|v| v as f32 + 1.0).collect();
        assert_eq!(buf, expect, "some row missed or double-visited");
    }

    #[test]
    fn nested_regions_run_inline() {
        set_threads(4);
        assert!(!in_parallel_worker());
        let nested_flags = par_map(&[0, 1, 2, 3], |_, _| {
            // Inside a region: further fan-out must collapse to serial.
            let inner = par_map(&[0, 1], |_, _| in_parallel_worker());
            inner.iter().all(|&flag| flag)
        });
        assert!(nested_flags.iter().all(|&ok| ok));
        assert!(!in_parallel_worker());
    }

    #[test]
    fn set_threads_clamps_and_sticks() {
        set_threads(0);
        assert_eq!(num_threads(), 1);
        set_threads(7);
        assert_eq!(num_threads(), 7);
        set_threads(4);
        assert_eq!(num_threads(), 4);
    }
}
