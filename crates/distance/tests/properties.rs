//! Property tests for the metric-ish axioms every trajectory measure
//! must satisfy, over proptest-generated trajectories (including empty
//! ones, which exercise the crate-wide empty-input conventions: two
//! empties are at distance 0, one empty side is at `f64::INFINITY`).
//!
//! For each of DTW, EDR, ERP, LCSS and discrete Fréchet:
//!
//! * **symmetry** — d(a, b) = d(b, a)
//! * **identity** — d(a, a) = 0
//! * **non-negativity** — d(a, b) ≥ 0

use proptest::prelude::*;
use t2vec_distance::dtw::Dtw;
use t2vec_distance::edr::Edr;
use t2vec_distance::erp::Erp;
use t2vec_distance::frechet::DiscreteFrechet;
use t2vec_distance::lcss::Lcss;
use t2vec_distance::TrajDistance;
use t2vec_spatial::point::Point;

/// The measures under test. EDR and LCSS get a threshold on the order of
/// a typical point gap so matches are neither trivial nor impossible.
fn measures() -> Vec<Box<dyn TrajDistance>> {
    vec![
        Box::new(Dtw::new()),
        Box::new(Edr::new(25.0)),
        Box::new(Erp::new()),
        Box::new(Lcss::new(25.0)),
        Box::new(DiscreteFrechet::new()),
    ]
}

fn to_points(coords: &[(f64, f64)]) -> Vec<Point> {
    coords.iter().map(|&(x, y)| Point::new(x, y)).collect()
}

/// Equality that tolerates both the infinite empty-vs-non-empty case
/// (`INF - INF` is NaN, so a plain epsilon check would reject it) and
/// float noise from the two DP traversal orders.
fn symmetric_eq(dab: f64, dba: f64) -> bool {
    dab == dba || (dab - dba).abs() <= 1e-9 * (1.0 + dab.abs())
}

proptest! {
    #[test]
    fn distances_are_symmetric(
        a in collection::vec((-100.0..100.0f64, -100.0..100.0f64), 0..12),
        b in collection::vec((-100.0..100.0f64, -100.0..100.0f64), 0..12),
    ) {
        let (a, b) = (to_points(&a), to_points(&b));
        for d in measures() {
            let dab = d.dist(&a, &b);
            let dba = d.dist(&b, &a);
            prop_assert!(
                symmetric_eq(dab, dba),
                "{}: d(a,b) = {dab} but d(b,a) = {dba} for |a| = {}, |b| = {}",
                d.name(),
                a.len(),
                b.len()
            );
        }
    }

    #[test]
    fn self_distance_is_zero(
        a in collection::vec((-100.0..100.0f64, -100.0..100.0f64), 0..12),
    ) {
        let a = to_points(&a);
        for d in measures() {
            let daa = d.dist(&a, &a);
            prop_assert!(
                daa == 0.0,
                "{}: d(a,a) = {daa} for |a| = {}",
                d.name(),
                a.len()
            );
        }
    }

    #[test]
    fn distances_are_non_negative(
        a in collection::vec((-100.0..100.0f64, -100.0..100.0f64), 0..12),
        b in collection::vec((-100.0..100.0f64, -100.0..100.0f64), 0..12),
    ) {
        let (a, b) = (to_points(&a), to_points(&b));
        for d in measures() {
            let dab = d.dist(&a, &b);
            prop_assert!(
                dab >= 0.0,
                "{}: d(a,b) = {dab} for |a| = {}, |b| = {}",
                d.name(),
                a.len(),
                b.len()
            );
        }
    }

    #[test]
    fn empty_conventions_hold(
        a in collection::vec((-100.0..100.0f64, -100.0..100.0f64), 1..12),
    ) {
        let a = to_points(&a);
        let empty: Vec<Point> = Vec::new();
        for d in measures() {
            prop_assert_eq!(d.dist(&empty, &empty), 0.0, "{}: empty vs empty", d.name());
            let dae = d.dist(&a, &empty);
            // Three measures override the crate-wide INFINITY rule with
            // their publications' own conventions: EDR is an edit
            // distance (deleting every point costs |a|), LCSS is a
            // normalized similarity turned distance (saturates at 1.0),
            // and ERP charges the total gap cost so it stays a metric.
            let gap_cost: f64 = a.iter().map(|p| p.dist(&Point::new(0.0, 0.0))).sum();
            let expected_ok = match d.name() {
                "EDR" => dae == a.len() as f64,
                "LCSS" => dae == 1.0,
                "ERP" => dae == gap_cost,
                _ => dae == f64::INFINITY,
            };
            prop_assert!(expected_ok, "{}: d(a, empty) = {dae}", d.name());
        }
    }
}
