//! Cross-backend bitwise equivalence for the full distance measures.
//!
//! The kernel-level proptests in `t2vec-tensor` prove each SIMD
//! primitive equals scalar; this test proves the *composed* DPs do too:
//! DTW (banded and full), EDR, LCSS, ERP, and discrete Fréchet produce
//! bit-identical `f64` results on every backend the host supports.
//!
//! One `#[test]` function on purpose: it flips the process-global SIMD
//! backend, so it must not interleave with other tests (this file is its
//! own test binary).

use rand::{Rng, RngExt};
use t2vec_distance::dtw::Dtw;
use t2vec_distance::edr::Edr;
use t2vec_distance::erp::Erp;
use t2vec_distance::frechet::DiscreteFrechet;
use t2vec_distance::lcss::Lcss;
use t2vec_distance::TrajDistance;
use t2vec_spatial::point::Point;
use t2vec_tensor::rng::det_rng;
use t2vec_tensor::simd::{self, Backend};

fn random_walk(n: usize, rng: &mut impl Rng) -> Vec<Point> {
    let mut p = Point::new(
        rng.random_range(-100.0..100.0),
        rng.random_range(-100.0..100.0),
    );
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(p);
        p = Point::new(
            p.x + rng.random_range(-20.0..20.0),
            p.y + rng.random_range(-20.0..20.0),
        );
    }
    out
}

#[test]
fn all_measures_bitwise_identical_across_backends() {
    let measures: Vec<Box<dyn TrajDistance>> = vec![
        Box::new(Dtw::new()),
        Box::new(Dtw::with_band(3)),
        Box::new(Edr::new(15.0)),
        Box::new(Lcss::new(15.0)),
        Box::new(Erp::new()),
        Box::new(Erp::with_gap(Point::new(12.5, -3.0))),
        Box::new(DiscreteFrechet::new()),
    ];
    // Lengths straddle the 2- and 4-wide f64 lanes, plus the degenerate
    // shapes (empty, single point, grossly unequal lengths).
    let shapes = [
        (0, 0),
        (0, 5),
        (1, 1),
        (1, 7),
        (2, 3),
        (4, 4),
        (5, 9),
        (17, 33),
        (40, 11),
    ];

    let backends: Vec<Backend> = [
        Backend::Scalar,
        Backend::Sse2,
        Backend::Avx2,
        Backend::Avx512,
        Backend::Neon,
    ]
    .into_iter()
    .filter(|b| b.supported())
    .collect();

    for (seed, &(n, m)) in shapes.iter().enumerate().map(|(s, x)| (s as u64, x)) {
        let mut rng = det_rng(900 + seed);
        let a = random_walk(n, &mut rng);
        let b = random_walk(m, &mut rng);
        for measure in &measures {
            assert!(simd::set_backend(Backend::Scalar));
            let reference = measure.dist(&a, &b);
            for &be in &backends {
                assert!(simd::set_backend(be));
                let got = measure.dist(&a, &b);
                assert_eq!(
                    got.to_bits(),
                    reference.to_bits(),
                    "{} diverged on backend {} for shape ({n}, {m}): {got} vs {reference}",
                    measure.name(),
                    be.name(),
                );
            }
        }
    }
    // Leave the process on the auto-detected backend.
    assert!(simd::set_backend(simd::detected()));
}
