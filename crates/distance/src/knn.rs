//! k-nearest-trajectory search for the DP measures, with lower-bound
//! pruning.
//!
//! The paper (§V-D) notes the classical measures *"rely on intricate
//! pruning techniques to answer k-nn queries on large datasets"*. This
//! module provides the standard cheap-to-expensive cascade:
//!
//! 1. a **lower bound** for each candidate (O(n) or O(1)), then
//! 2. the exact O(n²) dynamic program only for candidates whose bound
//!    beats the current k-th best distance.
//!
//! Bounds implemented:
//! * EDR: `|len(a) − len(b)|` (each unmatched point costs ≥ 1);
//! * DTW: distance between aligned endpoints (first + last pairs are
//!   always matched);
//! * a generic no-op bound (cascade degenerates to a full scan).

use crate::dtw::Dtw;
use crate::edr::Edr;
use crate::TrajDistance;
use t2vec_obs as obs;
use t2vec_spatial::point::Point;

/// A lower bound for a trajectory distance: `bound(q, t) ≤ dist(q, t)`.
pub trait LowerBound<D: TrajDistance> {
    /// Cheap lower bound on `D::dist(query, candidate)`.
    fn bound(&self, query: &[Point], candidate: &[Point]) -> f64;
}

/// The trivial bound (always 0): no pruning.
pub struct NoBound;

impl<D: TrajDistance> LowerBound<D> for NoBound {
    fn bound(&self, _query: &[Point], _candidate: &[Point]) -> f64 {
        0.0
    }
}

/// EDR length-difference bound: at least `|n − m|` edit operations are
/// required to equalise the lengths.
pub struct EdrLengthBound;

impl LowerBound<Edr> for EdrLengthBound {
    fn bound(&self, query: &[Point], candidate: &[Point]) -> f64 {
        query.len().abs_diff(candidate.len()) as f64
    }
}

/// DTW endpoint bound: the first and last pairs are always aligned, so
/// `d(q₀, t₀) + d(q₋₁, t₋₁) ≤ DTW(q, t)`.
pub struct DtwEndpointBound;

impl LowerBound<Dtw> for DtwEndpointBound {
    fn bound(&self, query: &[Point], candidate: &[Point]) -> f64 {
        match (
            query.first(),
            candidate.first(),
            query.last(),
            candidate.last(),
        ) {
            (Some(qf), Some(cf), Some(ql), Some(cl)) => qf.dist(cf) + ql.dist(cl),
            _ => 0.0,
        }
    }
}

/// Statistics of one pruned search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KnnStats {
    /// Candidates whose exact DP was evaluated.
    pub evaluated: usize,
    /// Candidates skipped by the lower bound.
    pub pruned: usize,
}

/// Exact k-NN with lower-bound pruning. Returns `(index, distance)`
/// pairs sorted ascending, plus pruning statistics.
///
/// The result is identical to a full scan — the bound only skips
/// candidates that provably cannot enter the top k.
pub fn knn_pruned<D: TrajDistance>(
    dist: &D,
    bound: &impl LowerBound<D>,
    query: &[Point],
    db: &[Vec<Point>],
    k: usize,
) -> (Vec<(usize, f64)>, KnnStats) {
    let query_t0 = std::time::Instant::now();
    let mut top: Vec<(usize, f64)> = Vec::with_capacity(k + 1);
    let mut stats = KnnStats {
        evaluated: 0,
        pruned: 0,
    };
    // Visit candidates in ascending bound order so good candidates are
    // found early and the pruning threshold tightens fast.
    let mut order: Vec<(usize, f64)> = db
        .iter()
        .enumerate()
        .map(|(i, t)| (i, bound.bound(query, t)))
        .collect();
    order.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    for (i, lb) in order {
        let kth = if top.len() >= k {
            top[k - 1].1
        } else {
            f64::INFINITY
        };
        if top.len() >= k && lb >= kth {
            stats.pruned += 1;
            continue;
        }
        stats.evaluated += 1;
        let d = dist.dist(query, &db[i]);
        if d < kth || top.len() < k {
            let pos = top.partition_point(|&(_, td)| td <= d);
            top.insert(pos, (i, d));
            top.truncate(k);
        }
    }
    // Pruning effectiveness (deterministic data) and per-query latency
    // (sink-only) for the DP baselines — see t2vec-obs.
    obs::counter!("distance.knn.evaluated").add(stats.evaluated as u64);
    obs::counter!("distance.knn.pruned").add(stats.pruned as u64);
    obs::histogram!("distance.knn.query_ns").record_duration(query_t0.elapsed());
    (top, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::random_walk;
    use t2vec_tensor::rng::det_rng;

    fn db(n: usize, seed: u64) -> Vec<Vec<Point>> {
        let mut rng = det_rng(seed);
        (0..n)
            .map(|i| random_walk(5 + (i * 7) % 30, &mut rng))
            .collect()
    }

    #[test]
    fn pruned_result_equals_full_scan_edr() {
        // Lengths spread 5..85 so the |n - m| bound exceeds the k-th best
        // distance for the extreme lengths.
        let mut rng = det_rng(1);
        let db: Vec<Vec<Point>> = (0..60)
            .map(|i| random_walk(5 + (i * 13) % 80, &mut rng))
            .collect();
        let edr = Edr::new(20.0);
        let query = random_walk(18, &mut rng);
        let (pruned, stats) = knn_pruned(&edr, &EdrLengthBound, &query, &db, 3);
        let (full, _) = knn_pruned(&edr, &NoBound, &query, &db, 3);
        let pd: Vec<f64> = pruned.iter().map(|&(_, d)| d).collect();
        let fd: Vec<f64> = full.iter().map(|&(_, d)| d).collect();
        assert_eq!(pd, fd, "pruning must be exact");
        assert!(stats.pruned > 0, "length bound should prune something");
        assert_eq!(stats.evaluated + stats.pruned, db.len());
    }

    #[test]
    fn pruned_result_equals_full_scan_dtw() {
        // Half the database lives 50 km away: its endpoint bound is far
        // beyond the k-th best of the near cluster.
        let mut rng = det_rng(3);
        let mut db: Vec<Vec<Point>> = (0..20).map(|_| random_walk(8, &mut rng)).collect();
        db.extend((0..20).map(|_| {
            random_walk(8, &mut rng)
                .into_iter()
                .map(|p| Point::new(p.x + 50_000.0, p.y + 50_000.0))
                .collect::<Vec<_>>()
        }));
        let dtw = Dtw::new();
        let query = random_walk(8, &mut rng);
        let (pruned, stats) = knn_pruned(&dtw, &DtwEndpointBound, &query, &db, 3);
        let (full, _) = knn_pruned(&dtw, &NoBound, &query, &db, 3);
        assert_eq!(
            pruned.iter().map(|&(_, d)| d).collect::<Vec<_>>(),
            full.iter().map(|&(_, d)| d).collect::<Vec<_>>()
        );
        assert!(
            stats.pruned >= 20,
            "the far cluster should be pruned: {stats:?}"
        );
    }

    #[test]
    fn bounds_are_valid_lower_bounds() {
        let db = db(30, 5);
        let mut rng = det_rng(6);
        let query = random_walk(15, &mut rng);
        let edr = Edr::new(20.0);
        let dtw = Dtw::new();
        for t in &db {
            assert!(
                LowerBound::<Edr>::bound(&EdrLengthBound, &query, t) <= edr.dist(&query, t) + 1e-9
            );
            assert!(
                LowerBound::<Dtw>::bound(&DtwEndpointBound, &query, t)
                    <= dtw.dist(&query, t) + 1e-9
            );
        }
    }

    #[test]
    fn k_larger_than_db() {
        let db = db(4, 7);
        let mut rng = det_rng(8);
        let query = random_walk(10, &mut rng);
        let (res, _) = knn_pruned(&Edr::new(20.0), &EdrLengthBound, &query, &db, 10);
        assert_eq!(res.len(), 4);
    }

    #[test]
    fn empty_db() {
        let mut rng = det_rng(9);
        let query = random_walk(5, &mut rng);
        let (res, stats) = knn_pruned(&Edr::new(20.0), &NoBound, &query, &[], 3);
        assert!(res.is_empty());
        assert_eq!(
            stats,
            KnnStats {
                evaluated: 0,
                pruned: 0
            }
        );
    }

    #[test]
    fn results_sorted_ascending() {
        let db = db(40, 10);
        let mut rng = det_rng(11);
        let query = random_walk(10, &mut rng);
        let (res, _) = knn_pruned(&Dtw::new(), &DtwEndpointBound, &query, &db, 10);
        for w in res.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }
}
