//! Edit distance with Real Penalty (Chen & Ng, VLDB 2004).
//!
//! ERP "marries" Lp-norms and edit distance: aligned pairs cost their
//! Euclidean distance, and gaps cost the distance to a fixed *gap point*
//! `g`. Unlike DTW, ERP is a metric (it satisfies the triangle
//! inequality), which the tests verify empirically.

use crate::{record_dp, split_xy, TrajDistance};
use serde::{Deserialize, Serialize};
use t2vec_spatial::point::Point;
use t2vec_tensor::simd;

/// Edit distance with Real Penalty.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Erp {
    /// The gap point `g` (Chen & Ng use the origin).
    pub gap: Point,
}

impl Default for Erp {
    fn default() -> Self {
        Self {
            gap: Point::new(0.0, 0.0),
        }
    }
}

impl Erp {
    /// ERP with the origin as the gap point.
    pub fn new() -> Self {
        Self::default()
    }

    /// ERP with an explicit gap point (e.g. the dataset centroid).
    pub fn with_gap(gap: Point) -> Self {
        Self { gap }
    }
}

impl TrajDistance for Erp {
    fn name(&self) -> &'static str {
        "ERP"
    }

    fn dist(&self, a: &[Point], b: &[Point]) -> f64 {
        // ERP defines the distance to an empty sequence exactly: the total
        // gap cost (so it stays a metric), rather than the workspace-wide
        // INFINITY convention used by the threshold-based measures.
        if a.is_empty() || b.is_empty() {
            let non_empty = if a.is_empty() { b } else { a };
            return non_empty.iter().map(|p| p.dist(&self.gap)).sum();
        }
        let (n, m) = (a.len(), b.len());
        record_dp(n * m);
        // Row-tiled fill through `t2vec_tensor::simd`: the per-row cost
        // row, the `prev[j-1] + cost` match candidates, the `prev[j] +
        // gap_a` candidates, and their minimum all vectorise; only the
        // horizontal `curr[j-1] + gap_b[j-1]` dependency stays serial.
        // Per cell the adds and the min association are exactly the
        // classic `min(min(match, gap_a), gap_b)`, so the result is
        // bitwise-unchanged.
        let (bx, by) = split_xy(b);
        // b's gap costs are row-invariant: compute them once.
        let mut gap_b = vec![0.0f64; m];
        simd::dist_row_f64(self.gap.x, self.gap.y, &bx, &by, &mut gap_b);
        let mut cost = vec![0.0f64; m];
        let mut mrow = vec![0.0f64; m];
        let mut trow = vec![0.0f64; m];
        let mut emin = vec![0.0f64; m];
        let mut prev = vec![0.0f64; m + 1];
        let mut curr = vec![0.0f64; m + 1];
        // dp[0][j]: all of b matched to gaps.
        for j in 1..=m {
            prev[j] = prev[j - 1] + gap_b[j - 1];
        }
        for i in 1..=n {
            let gap_a = a[i - 1].dist(&self.gap);
            curr[0] = prev[0] + gap_a;
            simd::dist_row_f64(a[i - 1].x, a[i - 1].y, &bx, &by, &mut cost);
            simd::elem_add_f64(&prev[..m], &cost, &mut mrow);
            simd::add_scalar_f64(&prev[1..], gap_a, &mut trow);
            simd::elem_min_f64(&mrow, &trow, &mut emin);
            for j in 1..=m {
                curr[j] = emin[j - 1].min(curr[j - 1] + gap_b[j - 1]);
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        prev[m]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{assert_basic_axioms, random_walk};
    use proptest::prelude::*;
    use t2vec_tensor::rng::det_rng;

    fn pts(xs: &[f64]) -> Vec<Point> {
        xs.iter().map(|&x| Point::new(x, 0.0)).collect()
    }

    #[test]
    fn identical_is_zero() {
        let a = pts(&[1.0, 2.0, 3.0]);
        assert_eq!(Erp::new().dist(&a, &a), 0.0);
    }

    #[test]
    fn one_sided_empty_costs_gap_distance() {
        let a = pts(&[3.0, 4.0]);
        // gap at origin: |3| + |4| = 7.
        assert_eq!(Erp::new().dist(&a, &[]), 7.0);
        assert_eq!(Erp::new().dist(&[], &a), 7.0);
        assert_eq!(Erp::new().dist(&[], &[]), 0.0);
    }

    #[test]
    fn known_alignment_with_gap() {
        // a = [5], b = [5, 6]; best: match 5-5, gap 6 (cost |6 - 0| = 6).
        let a = pts(&[5.0]);
        let b = pts(&[5.0, 6.0]);
        assert_eq!(Erp::new().dist(&a, &b), 6.0);
        // With gap point at (6, 0), the gap is free.
        assert_eq!(Erp::with_gap(Point::new(6.0, 0.0)).dist(&a, &b), 0.0);
    }

    #[test]
    fn triangle_inequality_on_random_walks() {
        // ERP is a metric; check the triangle inequality on many triples.
        let mut rng = det_rng(30);
        let erp = Erp::new();
        for _ in 0..40 {
            let a = random_walk(8, &mut rng);
            let b = random_walk(10, &mut rng);
            let c = random_walk(6, &mut rng);
            let ab = erp.dist(&a, &b);
            let bc = erp.dist(&b, &c);
            let ac = erp.dist(&a, &c);
            assert!(
                ac <= ab + bc + 1e-6,
                "triangle violated: {ac} > {ab} + {bc}"
            );
        }
    }

    proptest! {
        #[test]
        fn axioms_on_random_walks(seed in 0u64..200, n in 1usize..20, m in 1usize..20) {
            let mut rng = det_rng(seed);
            let a = random_walk(n, &mut rng);
            let b = random_walk(m, &mut rng);
            assert_basic_axioms(&Erp::new(), &a, &b);
        }

        #[test]
        fn gap_choice_changes_distance_smoothly(seed in 0u64..100) {
            let mut rng = det_rng(seed);
            let a = random_walk(6, &mut rng);
            let b = random_walk(9, &mut rng);
            let d1 = Erp::new().dist(&a, &b);
            let d2 = Erp::with_gap(Point::new(1.0, 1.0)).dist(&a, &b);
            prop_assert!(d1.is_finite() && d2.is_finite());
        }
    }
}
