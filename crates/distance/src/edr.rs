//! Edit Distance on Real sequences (Chen, Özsu & Oria, SIGMOD 2005).
//!
//! EDR quantises matching with a threshold ε: two points match (subcost 0)
//! iff they are within ε in *every* coordinate (the original per-dimension
//! rule); otherwise substitution, insertion and deletion each cost 1. The
//! result is an integer-valued edit distance. §I of the t2vec paper uses
//! EDR in its Figure 1a example, which is replicated in the tests here.
//!
//! The paper sets ε per the strategy in the original publication; our
//! evaluation uses a quarter of the grid cell side by default, matching
//! the common heuristic of ε ≈ the positioning noise scale.

use crate::{empty_rule, record_dp, split_xy, TrajDistance};
use serde::{Deserialize, Serialize};
use t2vec_spatial::point::Point;
use t2vec_tensor::simd;

/// Edit Distance on Real sequences.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Edr {
    /// The matching threshold ε in meters.
    pub epsilon: f64,
}

impl Edr {
    /// EDR with matching threshold `epsilon` (meters).
    ///
    /// # Panics
    /// Panics if `epsilon` is negative.
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon >= 0.0, "epsilon must be non-negative");
        Self { epsilon }
    }

    /// The original per-dimension matching rule — the scalar reference
    /// the vectorised `matches_row_f64` kernel is tested against.
    #[cfg(test)]
    fn matches(&self, a: &Point, b: &Point) -> bool {
        (a.x - b.x).abs() <= self.epsilon && (a.y - b.y).abs() <= self.epsilon
    }
}

impl TrajDistance for Edr {
    fn name(&self) -> &'static str {
        "EDR"
    }

    fn dist(&self, a: &[Point], b: &[Point]) -> f64 {
        if let Some(d) = empty_rule(a, b) {
            // EDR to an empty sequence is |other| in the original paper.
            if d.is_infinite() {
                return a.len().max(b.len()) as f64;
            }
            return d;
        }
        let (n, m) = (a.len(), b.len());
        record_dp(n * m);
        // The ε-matching predicate row (the only floating-point work in
        // the fill) vectorises through `t2vec_tensor::simd`; the integer
        // edit DP itself stays serial and unchanged. Comparisons are
        // exact, so the result is identical on every backend.
        let (bx, by) = split_xy(b);
        let mut mrow = vec![0u8; m];
        let mut prev: Vec<u32> = (0..=m as u32).collect();
        let mut curr = vec![0u32; m + 1];
        for i in 1..=n {
            simd::matches_row_f64(a[i - 1].x, a[i - 1].y, self.epsilon, &bx, &by, &mut mrow);
            curr[0] = i as u32;
            for j in 1..=m {
                let subcost = u32::from(mrow[j - 1] == 0);
                curr[j] = (prev[j - 1] + subcost)
                    .min(prev[j] + 1)
                    .min(curr[j - 1] + 1);
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        f64::from(prev[m])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{assert_basic_axioms, random_walk};
    use proptest::prelude::*;
    use t2vec_tensor::rng::det_rng;

    fn pts(xs: &[f64]) -> Vec<Point> {
        xs.iter().map(|&x| Point::new(x, 0.0)).collect()
    }

    /// Reproduces the Figure 1a example of the t2vec paper: two
    /// trajectories from the same route sampled at different rates, where
    /// EDR matches only the endpoints. The paper's narrative counts every
    /// unmatched point (1 unmatched `a` + 4 unmatched `b`s = "cost of 5");
    /// the DP-optimal edit script substitutes the unmatched `a` against
    /// one `b` instead (1 substitution + 3 insertions = 4). Either way the
    /// two representations of the *same route* end up far apart — the
    /// failure mode motivating t2vec.
    #[test]
    fn fig1a_same_route_gets_large_edr_cost() {
        // Ta = [a1, a2, a3] and Tb = [b1..b6] on the same straight route.
        // With ε = 0.9, a2 is too far from every b, so only (a1, b1) and
        // (a3, b6) match.
        let ta = pts(&[0.0, 3.0, 6.0]);
        let tb = pts(&[0.0, 1.0, 2.0, 4.0, 5.0, 6.0]);
        let edr = Edr::new(0.9);
        // Unmatched-point accounting (the figure's "cost of 5"):
        let matches = 2.0;
        let narrative_cost = (ta.len() as f64 - matches) + (tb.len() as f64 - matches);
        assert_eq!(narrative_cost, 5.0);
        // DP-optimal edit distance: one substitution replaces the
        // delete+insert pair, so 4.
        assert_eq!(edr.dist(&ta, &tb), 4.0);
        // With a threshold of 1 (the figure's cell threshold) a2 matches
        // b3 or b4 and the cost drops further.
        assert!(Edr::new(1.0).dist(&ta, &tb) < 4.0);
    }

    #[test]
    fn identical_is_zero_and_integer_valued() {
        let mut rng = det_rng(40);
        let a = random_walk(15, &mut rng);
        let edr = Edr::new(5.0);
        assert_eq!(edr.dist(&a, &a), 0.0);
        let b = random_walk(12, &mut rng);
        let d = edr.dist(&a, &b);
        assert_eq!(d, d.round(), "EDR must be integer-valued");
    }

    #[test]
    fn reduces_to_levenshtein_on_far_points() {
        // With ε = 0 and all points distinct, EDR is plain edit distance.
        let a = pts(&[0.0, 10.0, 20.0]);
        let b = pts(&[0.0, 30.0, 20.0, 40.0]);
        // match, substitute, match, insert = 2.
        assert_eq!(Edr::new(0.0).dist(&a, &b), 2.0);
    }

    #[test]
    fn per_dimension_matching_rule() {
        let edr = Edr::new(1.0);
        // Within ε on both axes -> match.
        assert_eq!(
            edr.dist(&[Point::new(0.0, 0.0)], &[Point::new(0.9, 0.9)]),
            0.0
        );
        // Euclidean distance 1.27 > 1 but per-dimension <= 1: still a match
        // (this is what distinguishes the original rule from L2 matching).
        assert_eq!(
            edr.dist(&[Point::new(0.0, 0.0)], &[Point::new(1.0, 0.8)]),
            0.0
        );
        // One axis exceeding epsilon -> mismatch (substitution).
        assert_eq!(
            edr.dist(&[Point::new(0.0, 0.0)], &[Point::new(1.1, 0.0)]),
            1.0
        );
    }

    #[test]
    fn empty_conventions() {
        let a = pts(&[1.0, 2.0]);
        assert_eq!(Edr::new(1.0).dist(&[], &[]), 0.0);
        assert_eq!(Edr::new(1.0).dist(&a, &[]), 2.0);
        assert_eq!(Edr::new(1.0).dist(&[], &a), 2.0);
    }

    #[test]
    fn monotone_in_epsilon() {
        let mut rng = det_rng(41);
        let a = random_walk(20, &mut rng);
        let b = random_walk(18, &mut rng);
        let mut last = f64::INFINITY;
        for eps in [0.0, 1.0, 5.0, 20.0, 100.0, 1000.0] {
            let d = Edr::new(eps).dist(&a, &b);
            assert!(d <= last, "EDR must not increase with epsilon");
            last = d;
        }
        // Huge epsilon matches everything: cost = length difference.
        assert_eq!(last, (a.len() as f64 - b.len() as f64).abs());
    }

    #[test]
    fn bounded_by_max_length() {
        let mut rng = det_rng(42);
        let a = random_walk(9, &mut rng);
        let b = random_walk(14, &mut rng);
        let d = Edr::new(1.0).dist(&a, &b);
        assert!(d <= 14.0);
        assert!(d >= 5.0); // at least the length difference
    }

    proptest! {
        #[test]
        fn axioms_on_random_walks(seed in 0u64..200, n in 1usize..20, m in 1usize..20) {
            let mut rng = det_rng(seed);
            let a = random_walk(n, &mut rng);
            let b = random_walk(m, &mut rng);
            assert_basic_axioms(&Edr::new(10.0), &a, &b);
        }

        /// The vectorised match row must agree with the scalar
        /// per-dimension rule on every element.
        #[test]
        fn match_row_agrees_with_scalar_rule(seed in 0u64..200, n in 1usize..20) {
            let mut rng = det_rng(seed);
            let edr = Edr::new(15.0);
            let p = random_walk(1, &mut rng)[0];
            let b = random_walk(n, &mut rng);
            let (bx, by) = crate::split_xy(&b);
            let mut mrow = vec![0u8; n];
            simd::matches_row_f64(p.x, p.y, edr.epsilon, &bx, &by, &mut mrow);
            for (j, q) in b.iter().enumerate() {
                prop_assert_eq!(mrow[j] != 0, edr.matches(&p, q));
            }
        }

        #[test]
        fn edr_within_edit_distance_bounds(
            seed in 0u64..200, n in 1usize..15, m in 1usize..15
        ) {
            let mut rng = det_rng(seed);
            let a = random_walk(n, &mut rng);
            let b = random_walk(m, &mut rng);
            let d = Edr::new(10.0).dist(&a, &b);
            prop_assert!(d >= n.abs_diff(m) as f64);
            prop_assert!(d <= n.max(m) as f64);
        }
    }
}
