//! Classical pairwise point-matching trajectory similarity measures.
//!
//! These are the baselines the paper compares against (§V-A): **EDR**
//! (Chen, Özsu & Oria, SIGMOD 2005), **LCSS** (Vlachos, Kollios &
//! Gunopulos, ICDE 2002), **EDwP** (Ranu et al., ICDE 2015 — the state of
//! the art for inconsistent sampling rates), and **CMS** (common cell
//! set). **DTW** (Yi, Jagadish & Faloutsos, ICDE 1998), **ERP** (Chen &
//! Ng, VLDB 2004) and the discrete **Fréchet** distance are implemented
//! as well for completeness, since the related-work discussion builds on
//! them.
//!
//! All of these run dynamic programs over the two point sequences and are
//! therefore `O(|Ta|·|Tb|)` — the quadratic cost that motivates t2vec's
//! `O(n + |v|)` representation-based similarity.
//!
//! Every measure implements [`TrajDistance`]; smaller values mean more
//! similar trajectories (LCSS, a similarity, is converted to a distance).

#![warn(missing_docs)]

pub mod cms;
pub mod dtw;
pub mod edr;
pub mod edwp;
pub mod erp;
pub mod frechet;
pub mod knn;
pub mod lcss;

use t2vec_spatial::point::Point;

/// A trajectory dissimilarity measure. Implementations must be cheap to
/// clone/share and callable from multiple threads.
pub trait TrajDistance: Send + Sync {
    /// A short stable identifier (used in experiment tables).
    fn name(&self) -> &'static str;

    /// The dissimilarity between two trajectories. Lower is more similar.
    /// Conventions for degenerate inputs: two empty trajectories are at
    /// distance 0; an empty vs a non-empty trajectory is at `f64::INFINITY`.
    fn dist(&self, a: &[Point], b: &[Point]) -> f64;
}

/// Dispatch helper: returns distance 0 for two empties, `INFINITY` when
/// exactly one side is empty, and `None` when both are non-empty (the
/// caller should run its DP).
pub(crate) fn empty_rule(a: &[Point], b: &[Point]) -> Option<f64> {
    match (a.is_empty(), b.is_empty()) {
        (true, true) => Some(0.0),
        (true, false) | (false, true) => Some(f64::INFINITY),
        (false, false) => None,
    }
}

/// Deinterleaves a point sequence into structure-of-arrays `(xs, ys)`
/// buffers — the layout the row-tiled SIMD kernels in
/// `t2vec_tensor::simd` consume. Done once per DP (`O(m)` against the
/// `O(n·m)` fill it enables).
pub(crate) fn split_xy(pts: &[Point]) -> (Vec<f64>, Vec<f64>) {
    (
        pts.iter().map(|p| p.x).collect(),
        pts.iter().map(|p| p.y).collect(),
    )
}

/// Records one DP invocation for the observability satellite: which SIMD
/// backend dispatched, and how many `O(n·m)` cells the fill visited.
pub(crate) fn record_dp(cells: usize) {
    t2vec_tensor::simd::record_dispatch();
    t2vec_obs::counter!("distance.dp.cells").add(cells as u64);
}

#[cfg(test)]
pub(crate) mod testutil {
    use rand::{Rng, RngExt};
    use t2vec_spatial::point::Point;

    /// A jagged random walk for property tests.
    pub fn random_walk(n: usize, rng: &mut impl Rng) -> Vec<Point> {
        let mut p = Point::new(
            rng.random_range(-100.0..100.0),
            rng.random_range(-100.0..100.0),
        );
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(p);
            p = Point::new(
                p.x + rng.random_range(-20.0..20.0),
                p.y + rng.random_range(-20.0..20.0),
            );
        }
        out
    }

    /// Asserts the three metric-ish axioms every measure must satisfy:
    /// identity (d(a,a) = 0 or at least minimal), symmetry, and
    /// non-negativity.
    pub fn assert_basic_axioms(d: &dyn crate::TrajDistance, a: &[Point], b: &[Point]) {
        let dab = d.dist(a, b);
        let dba = d.dist(b, a);
        assert!(dab >= 0.0, "{}: negative distance", d.name());
        assert!(
            (dab - dba).abs() <= 1e-6 * (1.0 + dab.abs()),
            "{}: asymmetric: {dab} vs {dba}",
            d.name()
        );
        assert!(d.dist(a, a) <= 1e-9, "{}: self-distance not zero", d.name());
    }
}
