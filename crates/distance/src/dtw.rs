//! Dynamic Time Warping (Yi, Jagadish & Faloutsos, ICDE 1998).
//!
//! DTW was the first measure to address local time shift in trajectory
//! similarity. It finds the monotone alignment of the two point sequences
//! that minimises the sum of Euclidean distances between aligned pairs.
//! The paper excludes it from the main comparison because EDR dominates
//! it on trajectory data, but it remains the canonical quadratic baseline
//! and is included in our benchmarks of the `O(n²)` cost.

use crate::{empty_rule, record_dp, split_xy, TrajDistance};
use serde::{Deserialize, Serialize};
use t2vec_spatial::point::Point;
use t2vec_tensor::simd;

/// Dynamic Time Warping with an optional Sakoe–Chiba band.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Dtw {
    /// Sakoe–Chiba band half-width in sequence positions. `None` runs the
    /// full unconstrained DP.
    pub band: Option<usize>,
}

impl Dtw {
    /// Unconstrained DTW.
    pub fn new() -> Self {
        Self::default()
    }

    /// DTW constrained to a Sakoe–Chiba band of half-width `band`.
    pub fn with_band(band: usize) -> Self {
        Self { band: Some(band) }
    }
}

impl TrajDistance for Dtw {
    fn name(&self) -> &'static str {
        "DTW"
    }

    fn dist(&self, a: &[Point], b: &[Point]) -> f64 {
        if let Some(d) = empty_rule(a, b) {
            return d;
        }
        let (n, m) = (a.len(), b.len());
        record_dp(n * m);
        // Effective band: at least |n - m| so a path exists.
        let band = self
            .band
            .map(|w| w.max(n.abs_diff(m)))
            .unwrap_or(usize::MAX);
        // Row-tiled fill: per row the cost row and the vertical/diagonal
        // predecessor minimum vectorise through `t2vec_tensor::simd`;
        // only the horizontal `curr[j-1]` dependency stays serial. Per
        // cell the operations and their order are exactly those of the
        // classic cell loop (`cost + min(min(prev[j-1], prev[j]),
        // curr[j-1])`), so the result is bitwise-unchanged.
        let (bx, by) = split_xy(b);
        let mut cost = vec![0.0f64; m];
        let mut emin = vec![0.0f64; m];
        let mut prev = vec![f64::INFINITY; m + 1];
        let mut curr = vec![f64::INFINITY; m + 1];
        prev[0] = 0.0;
        for i in 1..=n {
            curr.fill(f64::INFINITY);
            let lo = if band == usize::MAX {
                1
            } else {
                i.saturating_sub(band).max(1)
            };
            let hi = if band == usize::MAX {
                m
            } else {
                (i + band).min(m)
            };
            let w = hi + 1 - lo;
            let (ax, ay) = (a[i - 1].x, a[i - 1].y);
            simd::dist_row_f64(ax, ay, &bx[lo - 1..], &by[lo - 1..], &mut cost[..w]);
            simd::elem_min_f64(&prev[lo - 1..], &prev[lo..], &mut emin[..w]);
            for (jj, j) in (lo..=hi).enumerate() {
                let best = emin[jj].min(curr[j - 1]);
                curr[j] = cost[jj] + best;
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        prev[m]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{assert_basic_axioms, random_walk};
    use proptest::prelude::*;
    use t2vec_tensor::rng::det_rng;

    fn pts(xs: &[f64]) -> Vec<Point> {
        xs.iter().map(|&x| Point::new(x, 0.0)).collect()
    }

    #[test]
    fn identical_sequences_are_zero() {
        let a = pts(&[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(Dtw::new().dist(&a, &a), 0.0);
    }

    #[test]
    fn known_small_alignment() {
        // a = [0, 10], b = [0, 5, 10]: optimal warp aligns 5 to either
        // endpoint (cost 5).
        let a = pts(&[0.0, 10.0]);
        let b = pts(&[0.0, 5.0, 10.0]);
        assert_eq!(Dtw::new().dist(&a, &b), 5.0);
    }

    #[test]
    fn repeated_points_are_free() {
        // DTW is invariant to stuttering: repeating a point adds zero cost.
        let a = pts(&[0.0, 1.0, 2.0]);
        let b = pts(&[0.0, 0.0, 1.0, 1.0, 1.0, 2.0]);
        assert_eq!(Dtw::new().dist(&a, &b), 0.0);
    }

    #[test]
    fn empty_conventions() {
        let a = pts(&[1.0]);
        assert_eq!(Dtw::new().dist(&[], &[]), 0.0);
        assert_eq!(Dtw::new().dist(&a, &[]), f64::INFINITY);
        assert_eq!(Dtw::new().dist(&[], &a), f64::INFINITY);
    }

    #[test]
    fn band_matches_full_dp_when_wide() {
        let mut rng = det_rng(21);
        let a = random_walk(30, &mut rng);
        let b = random_walk(25, &mut rng);
        let full = Dtw::new().dist(&a, &b);
        let banded = Dtw::with_band(100).dist(&a, &b);
        assert!((full - banded).abs() < 1e-9);
    }

    #[test]
    fn narrow_band_upper_bounds_full_dp() {
        let mut rng = det_rng(22);
        let a = random_walk(40, &mut rng);
        let b = random_walk(40, &mut rng);
        let full = Dtw::new().dist(&a, &b);
        let banded = Dtw::with_band(2).dist(&a, &b);
        assert!(
            banded >= full - 1e-9,
            "band must constrain: {banded} < {full}"
        );
        assert!(banded.is_finite());
    }

    #[test]
    fn single_point_vs_sequence() {
        let a = pts(&[0.0]);
        let b = pts(&[1.0, 2.0]);
        // Single point aligns to all: |0-1| + |0-2| = 3.
        assert_eq!(Dtw::new().dist(&a, &b), 3.0);
    }

    proptest! {
        #[test]
        fn axioms_on_random_walks(seed in 0u64..200, n in 1usize..25, m in 1usize..25) {
            let mut rng = det_rng(seed);
            let a = random_walk(n, &mut rng);
            let b = random_walk(m, &mut rng);
            assert_basic_axioms(&Dtw::new(), &a, &b);
        }

        #[test]
        fn dtw_bounded_below_by_endpoint_distances(seed in 0u64..200) {
            let mut rng = det_rng(seed);
            let a = random_walk(10, &mut rng);
            let b = random_walk(12, &mut rng);
            let d = Dtw::new().dist(&a, &b);
            // The first and last pairs are always aligned.
            prop_assert!(d >= a[0].dist(&b[0]) + a[9].dist(&b[11]) - 1e-9);
        }
    }
}
