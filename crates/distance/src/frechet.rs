//! Discrete Fréchet distance (Eiter & Mannila, 1994).
//!
//! The "dog-leash" distance between two polylines, restricted to their
//! sample points: the minimum over monotone alignments of the *maximum*
//! aligned pair distance. It is not part of the paper's comparison set but
//! completes the family of classical measures and is useful as an
//! additional sanity baseline in the examples.

use crate::{empty_rule, record_dp, split_xy, TrajDistance};
use serde::{Deserialize, Serialize};
use t2vec_spatial::point::Point;
use t2vec_tensor::simd;

/// Discrete Fréchet distance.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct DiscreteFrechet;

impl DiscreteFrechet {
    /// A new discrete Fréchet measure.
    pub fn new() -> Self {
        Self
    }
}

impl TrajDistance for DiscreteFrechet {
    fn name(&self) -> &'static str {
        "Frechet"
    }

    fn dist(&self, a: &[Point], b: &[Point]) -> f64 {
        if let Some(d) = empty_rule(a, b) {
            return d;
        }
        let m = b.len();
        record_dp(a.len() * m);
        // Row-tiled fill through `t2vec_tensor::simd`: the distance row
        // and the `min(prev[j-1], prev[j])` predecessor pairs vectorise;
        // the horizontal `curr[j-1]` dependency stays serial. The only
        // change from the classic cell loop is re-associating the
        // three-way predecessor min to `min(min(prev[j-1], prev[j]),
        // curr[j-1])` — `min` over non-NaN values is a pure selection,
        // so the chosen *value* (hence every downstream bit) is
        // order-independent and the result is bitwise-unchanged.
        let (bx, by) = split_xy(b);
        let mut d = vec![0.0f64; m];
        let mut pmin = vec![0.0f64; m];
        let mut prev = vec![f64::INFINITY; m];
        let mut curr = vec![f64::INFINITY; m];
        for (i, pa) in a.iter().enumerate() {
            simd::dist_row_f64(pa.x, pa.y, &bx, &by, &mut d);
            if i == 0 {
                // First row: reach is the prefix maximum of the
                // distance row (only the left neighbour exists).
                curr[0] = d[0];
                for j in 1..m {
                    curr[j] = curr[j - 1].max(d[j]);
                }
            } else {
                if m > 1 {
                    simd::elem_min_f64(&prev[..m - 1], &prev[1..], &mut pmin[1..]);
                }
                curr[0] = prev[0].max(d[0]);
                for j in 1..m {
                    let best = pmin[j].min(curr[j - 1]);
                    curr[j] = best.max(d[j]);
                }
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        prev[m - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{assert_basic_axioms, random_walk};
    use proptest::prelude::*;
    use t2vec_tensor::rng::det_rng;

    fn pts(xys: &[(f64, f64)]) -> Vec<Point> {
        xys.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn identical_is_zero() {
        let a = pts(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)]);
        assert_eq!(DiscreteFrechet::new().dist(&a, &a), 0.0);
    }

    #[test]
    fn parallel_lines_distance_is_offset() {
        let a = pts(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        let b = pts(&[(0.0, 3.0), (1.0, 3.0), (2.0, 3.0)]);
        assert_eq!(DiscreteFrechet::new().dist(&a, &b), 3.0);
    }

    #[test]
    fn dominated_by_worst_pair() {
        // One far outlier forces the leash length.
        let a = pts(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        let b = pts(&[(0.0, 0.0), (1.0, 50.0), (2.0, 0.0)]);
        assert_eq!(DiscreteFrechet::new().dist(&a, &b), 50.0);
    }

    #[test]
    fn stuttering_is_free() {
        let a = pts(&[(0.0, 0.0), (1.0, 0.0)]);
        let b = pts(&[(0.0, 0.0), (0.0, 0.0), (1.0, 0.0), (1.0, 0.0)]);
        assert_eq!(DiscreteFrechet::new().dist(&a, &b), 0.0);
    }

    #[test]
    fn empty_conventions() {
        let a = pts(&[(1.0, 1.0)]);
        assert_eq!(DiscreteFrechet::new().dist(&[], &[]), 0.0);
        assert_eq!(DiscreteFrechet::new().dist(&a, &[]), f64::INFINITY);
    }

    proptest! {
        #[test]
        fn axioms_on_random_walks(seed in 0u64..200, n in 1usize..20, m in 1usize..20) {
            let mut rng = det_rng(seed);
            let a = random_walk(n, &mut rng);
            let b = random_walk(m, &mut rng);
            assert_basic_axioms(&DiscreteFrechet::new(), &a, &b);
        }

        #[test]
        fn frechet_at_least_endpoint_distance(seed in 0u64..200) {
            let mut rng = det_rng(seed);
            let a = random_walk(10, &mut rng);
            let b = random_walk(8, &mut rng);
            let d = DiscreteFrechet::new().dist(&a, &b);
            prop_assert!(d >= a[0].dist(&b[0]) - 1e-9);
            prop_assert!(d >= a[9].dist(&b[7]) - 1e-9);
        }

        #[test]
        fn frechet_bounded_by_max_pairwise(seed in 0u64..200) {
            let mut rng = det_rng(seed);
            let a = random_walk(10, &mut rng);
            let b = random_walk(8, &mut rng);
            let d = DiscreteFrechet::new().dist(&a, &b);
            let max_pair = a
                .iter()
                .flat_map(|p| b.iter().map(move |q| p.dist(q)))
                .fold(0.0f64, f64::max);
            prop_assert!(d <= max_pair + 1e-9);
        }
    }
}
