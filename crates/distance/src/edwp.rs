//! Edit Distance with Projections (Ranu et al., ICDE 2015).
//!
//! EDwP is the state-of-the-art pairwise measure for trajectories with
//! *inconsistent sampling rates* and the strongest baseline in the t2vec
//! evaluation. It aligns two trajectories with two edit operations:
//!
//! * **replacement** of an edge of `T1` with an edge of `T2`, costing
//!   `rep(e1, e2) · cov(e1, e2)` where `rep` is the sum of distances
//!   between the matched edge endpoints and `cov = |e1| + |e2|` weights
//!   the cost by the length of trajectory covered;
//! * **insertion** of a new point on an edge, placed at the *projection*
//!   of the other trajectory's next sample point onto that edge — this is
//!   the linear-interpolation step that lets EDwP match trajectories
//!   sampled at different rates exactly.
//!
//! # Implementation
//!
//! The recursion is realised as a dynamic program over three state
//! layers, all indexed by `(i, j)` (current point of `T1`, current point
//! of `T2`):
//!
//! * `E[i][j]` — `a_i` is matched with `b_j` (both are real samples);
//! * `F[i][j]` — the current `T1` position is the projection of `b_j`
//!   onto segment `a_i → a_{i+1}` (an inserted point), matched with `b_j`;
//! * `G[i][j]` — symmetric: the current `T2` position is the projection
//!   of `a_i` onto `b_j → b_{j+1}`, matched with `a_i`.
//!
//! Because the inserted point is always the projection of the *most
//! recently matched* point of the other trajectory, the interpolated
//! position is a pure function of `(i, j)` and the DP is well-defined.
//! Each state relaxes at most three successors, so the total cost is
//! `O(|T1|·|T2|)` time — the quadratic complexity the t2vec paper cites
//! (it quotes `O((|Ta|+|Tb|)²)`, §V-D).
//!
//! The key behavioural property, verified by the tests: inserting extra
//! collinear sample points along the same route (resampling) leaves the
//! distance at zero, while genuinely different routes get a positive,
//! growing cost.

use crate::{empty_rule, TrajDistance};
use serde::{Deserialize, Serialize};
use t2vec_spatial::point::Point;

/// Edit Distance with Projections.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Edwp;

impl Edwp {
    /// A new EDwP measure (it has no tunable parameters).
    pub fn new() -> Self {
        Self
    }

    /// Cost of replacing edge `(p1 → p2)` of `T1` with `(r1 → r2)` of
    /// `T2`: `rep · cov`.
    #[inline]
    fn edge_cost(p1: &Point, p2: &Point, r1: &Point, r2: &Point) -> f64 {
        let rep = p1.dist(r1) + p2.dist(r2);
        let cov = p1.dist(p2) + r1.dist(r2);
        rep * cov
    }
}

impl TrajDistance for Edwp {
    fn name(&self) -> &'static str {
        "EDwP"
    }

    fn dist(&self, a: &[Point], b: &[Point]) -> f64 {
        if let Some(d) = empty_rule(a, b) {
            return d;
        }
        let (n, m) = (a.len(), b.len());
        if n == 1 && m == 1 {
            // Degenerate trips: fall back to point distance so ranking
            // still behaves sensibly.
            return a[0].dist(&b[0]);
        }
        if n == 1 {
            return b
                .windows(2)
                .map(|w| Self::edge_cost(&a[0], &a[0], &w[0], &w[1]))
                .sum();
        }
        if m == 1 {
            return a
                .windows(2)
                .map(|w| Self::edge_cost(&w[0], &w[1], &b[0], &b[0]))
                .sum();
        }

        // Projection of b[j] onto T1 segment i (valid for i < n-1).
        let q1 = |i: usize, j: usize| -> Point { b[j].project_onto_segment(&a[i], &a[i + 1]) };
        // Projection of a[i] onto T2 segment j (valid for j < m-1).
        let q2 = |i: usize, j: usize| -> Point { a[i].project_onto_segment(&b[j], &b[j + 1]) };

        let inf = f64::INFINITY;
        let idx = |i: usize, j: usize| i * m + j;
        let mut e = vec![inf; n * m];
        let mut f = vec![inf; n * m];
        let mut g = vec![inf; n * m];
        e[idx(0, 0)] = 0.0;

        let relax = |slot: &mut f64, cand: f64| {
            if cand < *slot {
                *slot = cand;
            }
        };

        for i in 0..n {
            for j in 0..m {
                // --- From E[i][j]: positions (a_i, b_j). ---
                let ec = e[idx(i, j)];
                if ec < inf && i + 1 < n && j + 1 < m {
                    {
                        // replacement
                        let c = ec + Self::edge_cost(&a[i], &a[i + 1], &b[j], &b[j + 1]);
                        relax(&mut e[idx(i + 1, j + 1)], c);
                        // insert into T1 at proj(b_{j+1})
                        let q = q1(i, j + 1);
                        let c = ec + Self::edge_cost(&a[i], &q, &b[j], &b[j + 1]);
                        relax(&mut f[idx(i, j + 1)], c);
                        // insert into T2 at proj(a_{i+1})
                        let r = q2(i + 1, j);
                        let c = ec + Self::edge_cost(&a[i], &a[i + 1], &b[j], &r);
                        relax(&mut g[idx(i + 1, j)], c);
                    }
                }
                // --- From F[i][j]: positions (proj(b_j, seg_i), b_j). ---
                let fc = f[idx(i, j)];
                if fc < inf && i + 1 < n {
                    let p = q1(i, j);
                    if j + 1 < m {
                        // replacement: consume (p -> a_{i+1}) and (b_j -> b_{j+1})
                        let c = fc + Self::edge_cost(&p, &a[i + 1], &b[j], &b[j + 1]);
                        relax(&mut e[idx(i + 1, j + 1)], c);
                        // insert into T1 again on the same segment
                        let q = q1(i, j + 1);
                        let c = fc + Self::edge_cost(&p, &q, &b[j], &b[j + 1]);
                        relax(&mut f[idx(i, j + 1)], c);
                    }
                    if j + 1 < m {
                        // insert into T2 at proj(a_{i+1})
                        let r = q2(i + 1, j);
                        let c = fc + Self::edge_cost(&p, &a[i + 1], &b[j], &r);
                        relax(&mut g[idx(i + 1, j)], c);
                    }
                }
                // --- From G[i][j]: positions (a_i, proj(a_i, seg_j)). ---
                let gc = g[idx(i, j)];
                if gc < inf && j + 1 < m {
                    let r = q2(i, j);
                    if i + 1 < n {
                        // replacement: consume (a_i -> a_{i+1}) and (r -> b_{j+1})
                        let c = gc + Self::edge_cost(&a[i], &a[i + 1], &r, &b[j + 1]);
                        relax(&mut e[idx(i + 1, j + 1)], c);
                        // insert into T2 again on the same segment
                        let r2p = q2(i + 1, j);
                        let c = gc + Self::edge_cost(&a[i], &a[i + 1], &r, &r2p);
                        relax(&mut g[idx(i + 1, j)], c);
                        // insert into T1 at proj(b_{j+1})
                        let q = q1(i, j + 1);
                        let c = gc + Self::edge_cost(&a[i], &q, &r, &b[j + 1]);
                        relax(&mut f[idx(i, j + 1)], c);
                    }
                }
            }
        }
        e[idx(n - 1, m - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edr::Edr;
    use crate::testutil::{assert_basic_axioms, random_walk};
    use proptest::prelude::*;
    use t2vec_spatial::transform::downsample;
    use t2vec_tensor::rng::det_rng;

    fn pts(xys: &[(f64, f64)]) -> Vec<Point> {
        xys.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    /// Inserts the midpoint of every edge (a lossless resampling).
    fn resample_double(traj: &[Point]) -> Vec<Point> {
        let mut out = Vec::with_capacity(traj.len() * 2);
        for w in traj.windows(2) {
            out.push(w[0]);
            out.push(w[0].lerp(&w[1], 0.5));
        }
        out.push(*traj.last().unwrap());
        out
    }

    #[test]
    fn identical_is_zero() {
        let a = pts(&[(0.0, 0.0), (10.0, 0.0), (10.0, 10.0)]);
        assert_eq!(Edwp::new().dist(&a, &a), 0.0);
    }

    #[test]
    fn resampling_same_route_is_free() {
        // The headline property: a denser sampling of the same polyline
        // is at distance ~0 — this is what linear interpolation buys and
        // what EDR/LCSS fundamentally cannot do.
        let a = pts(&[(0.0, 0.0), (100.0, 0.0), (100.0, 100.0), (250.0, 100.0)]);
        let b = resample_double(&a);
        let d = Edwp::new().dist(&a, &b);
        assert!(d < 1e-6, "resampled route should be free, got {d}");
        // EDR at a moderate threshold cannot see this equality.
        assert!(Edr::new(10.0).dist(&a, &b) > 0.0);
    }

    #[test]
    fn double_resampling_still_free() {
        let a = pts(&[(0.0, 0.0), (60.0, 80.0), (120.0, 0.0)]);
        let b = resample_double(&resample_double(&a));
        assert!(Edwp::new().dist(&a, &b) < 1e-6);
    }

    #[test]
    fn offset_route_costs_more_with_larger_offset() {
        let a = pts(&[(0.0, 0.0), (100.0, 0.0), (200.0, 0.0)]);
        let mut last = 0.0;
        for off in [10.0, 30.0, 90.0] {
            let b: Vec<Point> = a.iter().map(|p| Point::new(p.x, p.y + off)).collect();
            let d = Edwp::new().dist(&a, &b);
            assert!(d > last, "cost must grow with offset");
            last = d;
        }
    }

    #[test]
    fn single_point_cases() {
        let a = pts(&[(0.0, 0.0)]);
        let b = pts(&[(3.0, 4.0)]);
        assert_eq!(Edwp::new().dist(&a, &b), 5.0);
        let c = pts(&[(0.0, 0.0), (10.0, 0.0)]);
        let d = Edwp::new().dist(&a, &c);
        assert!(d > 0.0 && d.is_finite());
        assert_eq!(d, Edwp::new().dist(&c, &a), "single-point symmetric");
    }

    #[test]
    fn empty_conventions() {
        let a = pts(&[(1.0, 1.0)]);
        assert_eq!(Edwp::new().dist(&[], &[]), 0.0);
        assert_eq!(Edwp::new().dist(&a, &[]), f64::INFINITY);
    }

    #[test]
    fn robust_to_downsampling_ranking() {
        // A downsampled variant of route A must stay closer to A than a
        // parallel but distinct route — the core claim EDwP was built for.
        let mut rng = det_rng(60);
        let a: Vec<Point> = (0..40)
            .map(|i| Point::new(i as f64 * 25.0, (i as f64 * 0.3).sin() * 40.0))
            .collect();
        let offset: Vec<Point> = a.iter().map(|p| Point::new(p.x, p.y + 300.0)).collect();
        let edwp = Edwp::new();
        for _ in 0..5 {
            let down = downsample(&a, 0.5, &mut rng);
            assert!(
                edwp.dist(&a, &down) < edwp.dist(&a, &offset),
                "downsampled self must rank above a distinct route"
            );
        }
    }

    proptest! {
        #[test]
        fn axioms_on_random_walks(seed in 0u64..150, n in 1usize..12, m in 1usize..12) {
            let mut rng = det_rng(seed);
            let a = random_walk(n, &mut rng);
            let b = random_walk(m, &mut rng);
            assert_basic_axioms(&Edwp::new(), &a, &b);
        }

        #[test]
        fn midpoint_resampling_invariance(seed in 0u64..150, n in 2usize..10) {
            let mut rng = det_rng(seed);
            let a = random_walk(n, &mut rng);
            let b = resample_double(&a);
            let d = Edwp::new().dist(&a, &b);
            prop_assert!(d.abs() < 1e-4, "resampling cost {d}");
        }

        #[test]
        fn finite_on_all_nonempty_inputs(seed in 0u64..150, n in 1usize..15, m in 1usize..15) {
            let mut rng = det_rng(seed);
            let a = random_walk(n, &mut rng);
            let b = random_walk(m, &mut rng);
            prop_assert!(Edwp::new().dist(&a, &b).is_finite());
        }
    }
}
