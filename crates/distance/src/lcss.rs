//! Longest Common SubSequence similarity (Vlachos, Kollios & Gunopulos,
//! ICDE 2002).
//!
//! Two points "match" when they are within ε per coordinate; LCSS is the
//! length of the longest common subsequence under that rule. We convert
//! the similarity into the standard distance
//! `1 − LCSS(a, b) / min(|a|, |b|)`, which is what the paper's evaluation
//! ranks by.

use crate::{empty_rule, record_dp, split_xy, TrajDistance};
use serde::{Deserialize, Serialize};
use t2vec_spatial::point::Point;
use t2vec_tensor::simd;

/// LCSS-based distance.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Lcss {
    /// The matching threshold ε in meters.
    pub epsilon: f64,
}

impl Lcss {
    /// LCSS distance with matching threshold `epsilon` (meters).
    ///
    /// # Panics
    /// Panics if `epsilon` is negative.
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon >= 0.0, "epsilon must be non-negative");
        Self { epsilon }
    }

    /// The per-dimension matching rule — the scalar reference the
    /// vectorised `matches_row_f64` kernel is tested against.
    #[cfg(test)]
    fn matches(&self, a: &Point, b: &Point) -> bool {
        (a.x - b.x).abs() <= self.epsilon && (a.y - b.y).abs() <= self.epsilon
    }

    /// The raw LCSS length (a similarity, higher = more similar).
    pub fn lcss_len(&self, a: &[Point], b: &[Point]) -> usize {
        let (n, m) = (a.len(), b.len());
        if n == 0 || m == 0 {
            return 0;
        }
        record_dp(n * m);
        // As in EDR: the ε-matching row vectorises through
        // `t2vec_tensor::simd` (exact comparisons, backend-identical);
        // the integer subsequence DP stays serial and unchanged.
        let (bx, by) = split_xy(b);
        let mut mrow = vec![0u8; m];
        let mut prev = vec![0u32; m + 1];
        let mut curr = vec![0u32; m + 1];
        for i in 1..=n {
            simd::matches_row_f64(a[i - 1].x, a[i - 1].y, self.epsilon, &bx, &by, &mut mrow);
            for j in 1..=m {
                curr[j] = if mrow[j - 1] != 0 {
                    prev[j - 1] + 1
                } else {
                    prev[j].max(curr[j - 1])
                };
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        prev[m] as usize
    }
}

impl TrajDistance for Lcss {
    fn name(&self) -> &'static str {
        "LCSS"
    }

    fn dist(&self, a: &[Point], b: &[Point]) -> f64 {
        if let Some(d) = empty_rule(a, b) {
            return if d.is_infinite() { 1.0 } else { 0.0 };
        }
        let sim = self.lcss_len(a, b) as f64 / a.len().min(b.len()) as f64;
        1.0 - sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{assert_basic_axioms, random_walk};
    use proptest::prelude::*;
    use t2vec_tensor::rng::det_rng;

    fn pts(xs: &[f64]) -> Vec<Point> {
        xs.iter().map(|&x| Point::new(x, 0.0)).collect()
    }

    #[test]
    fn identical_distance_zero() {
        let a = pts(&[1.0, 2.0, 3.0]);
        assert_eq!(Lcss::new(0.5).dist(&a, &a), 0.0);
    }

    #[test]
    fn totally_different_distance_one() {
        let a = pts(&[0.0, 1.0]);
        let b = pts(&[100.0, 101.0]);
        assert_eq!(Lcss::new(0.5).dist(&a, &b), 1.0);
        assert_eq!(Lcss::new(0.5).lcss_len(&a, &b), 0);
    }

    #[test]
    fn subsequence_has_distance_zero() {
        // b is a subsequence of a: every b-point matches in order, so
        // LCSS = |b| and distance = 0 (LCSS ignores the skipped points —
        // exactly the robustness-to-dropping the paper discusses).
        let a = pts(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        let b = pts(&[0.0, 2.0, 5.0]);
        assert_eq!(Lcss::new(0.1).dist(&a, &b), 0.0);
    }

    #[test]
    fn known_lcss_length() {
        let a = pts(&[0.0, 10.0, 20.0, 30.0]);
        let b = pts(&[10.0, 30.0, 40.0]);
        // Common subsequence: [10, 30].
        assert_eq!(Lcss::new(0.1).lcss_len(&a, &b), 2);
        let d = Lcss::new(0.1).dist(&a, &b);
        assert!((d - (1.0 - 2.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn empty_conventions() {
        let a = pts(&[1.0]);
        assert_eq!(Lcss::new(1.0).dist(&[], &[]), 0.0);
        assert_eq!(Lcss::new(1.0).dist(&a, &[]), 1.0);
        assert_eq!(Lcss::new(1.0).lcss_len(&a, &[]), 0);
    }

    #[test]
    fn similarity_monotone_in_epsilon() {
        let mut rng = det_rng(50);
        let a = random_walk(15, &mut rng);
        let b = random_walk(15, &mut rng);
        let mut last = 0usize;
        for eps in [0.0, 5.0, 20.0, 100.0, 1000.0] {
            let l = Lcss::new(eps).lcss_len(&a, &b);
            assert!(l >= last);
            last = l;
        }
        assert_eq!(last, 15); // everything matches at huge epsilon
    }

    proptest! {
        #[test]
        fn distance_in_unit_interval(seed in 0u64..200, n in 1usize..20, m in 1usize..20) {
            let mut rng = det_rng(seed);
            let a = random_walk(n, &mut rng);
            let b = random_walk(m, &mut rng);
            let d = Lcss::new(15.0).dist(&a, &b);
            prop_assert!((0.0..=1.0).contains(&d));
        }

        #[test]
        fn axioms_on_random_walks(seed in 0u64..200, n in 1usize..20, m in 1usize..20) {
            let mut rng = det_rng(seed);
            let a = random_walk(n, &mut rng);
            let b = random_walk(m, &mut rng);
            assert_basic_axioms(&Lcss::new(15.0), &a, &b);
        }

        /// The vectorised match row must agree with the scalar
        /// per-dimension rule on every element (boundary-equal included).
        #[test]
        fn match_row_agrees_with_scalar_rule(seed in 0u64..200, n in 1usize..20) {
            let mut rng = det_rng(seed);
            let lcss = Lcss::new(15.0);
            let p = random_walk(1, &mut rng)[0];
            let b = random_walk(n, &mut rng);
            let (bx, by) = crate::split_xy(&b);
            let mut mrow = vec![0u8; n];
            simd::matches_row_f64(p.x, p.y, lcss.epsilon, &bx, &by, &mut mrow);
            for (j, q) in b.iter().enumerate() {
                prop_assert_eq!(mrow[j] != 0, lcss.matches(&p, q));
            }
        }

        #[test]
        fn lcss_bounded_by_min_length(seed in 0u64..100, n in 1usize..15, m in 1usize..15) {
            let mut rng = det_rng(seed);
            let a = random_walk(n, &mut rng);
            let b = random_walk(m, &mut rng);
            prop_assert!(Lcss::new(25.0).lcss_len(&a, &b) <= n.min(m));
        }
    }
}
