//! Common cell set (CMS) baseline.
//!
//! §V-A of the paper: *"the common set representation is used to measure
//! the similarity of two trajectories based on their common set after
//! they have been mapped to cells"*. CMS discards the sequential order
//! entirely — the paper includes it precisely to show that order matters
//! (it is the worst method in every experiment).
//!
//! We implement it as the Jaccard distance between the sets of grid cells
//! the two trajectories touch.

use crate::{empty_rule, TrajDistance};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use t2vec_spatial::point::Point;

/// Common-cell-set (Jaccard) distance.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Cms {
    /// Side length of the square cells used for discretisation, meters.
    pub cell_side: f64,
}

impl Cms {
    /// CMS over square cells of the given side (meters).
    ///
    /// # Panics
    /// Panics if `cell_side` is not positive.
    pub fn new(cell_side: f64) -> Self {
        assert!(cell_side > 0.0, "cell side must be positive");
        Self { cell_side }
    }

    fn cells(&self, traj: &[Point]) -> HashSet<(i64, i64)> {
        traj.iter()
            .map(|p| {
                (
                    (p.x / self.cell_side).floor() as i64,
                    (p.y / self.cell_side).floor() as i64,
                )
            })
            .collect()
    }
}

impl TrajDistance for Cms {
    fn name(&self) -> &'static str {
        "CMS"
    }

    fn dist(&self, a: &[Point], b: &[Point]) -> f64 {
        if let Some(d) = empty_rule(a, b) {
            return if d.is_infinite() { 1.0 } else { 0.0 };
        }
        let ca = self.cells(a);
        let cb = self.cells(b);
        let inter = ca.intersection(&cb).count() as f64;
        let union = (ca.len() + cb.len()) as f64 - inter;
        1.0 - inter / union
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{assert_basic_axioms, random_walk};
    use proptest::prelude::*;
    use t2vec_tensor::rng::det_rng;

    fn pts(xys: &[(f64, f64)]) -> Vec<Point> {
        xys.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn identical_is_zero() {
        let a = pts(&[(10.0, 10.0), (150.0, 20.0), (290.0, 30.0)]);
        assert_eq!(Cms::new(100.0).dist(&a, &a), 0.0);
    }

    #[test]
    fn disjoint_is_one() {
        let a = pts(&[(10.0, 10.0)]);
        let b = pts(&[(1000.0, 1000.0)]);
        assert_eq!(Cms::new(100.0).dist(&a, &b), 1.0);
    }

    #[test]
    fn order_blindness() {
        // CMS cannot distinguish a route from its reverse — the flaw the
        // paper calls out.
        let a = pts(&[(10.0, 10.0), (150.0, 10.0), (290.0, 10.0)]);
        let mut rev = a.clone();
        rev.reverse();
        assert_eq!(Cms::new(100.0).dist(&a, &rev), 0.0);
    }

    #[test]
    fn half_overlap_jaccard() {
        // a covers cells {0,1}, b covers cells {1,2}: Jaccard = 1/3.
        let a = pts(&[(50.0, 50.0), (150.0, 50.0)]);
        let b = pts(&[(150.0, 50.0), (250.0, 50.0)]);
        let d = Cms::new(100.0).dist(&a, &b);
        assert!((d - (1.0 - 1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn duplicate_points_do_not_change_set() {
        let a = pts(&[(50.0, 50.0), (55.0, 52.0), (51.0, 58.0)]);
        let b = pts(&[(50.0, 50.0)]);
        assert_eq!(Cms::new(100.0).dist(&a, &b), 0.0);
    }

    #[test]
    fn negative_coordinates_use_floor() {
        // floor semantics: -10 and +10 are different cells at side 100.
        let a = pts(&[(-10.0, 0.0)]);
        let b = pts(&[(10.0, 0.0)]);
        assert_eq!(Cms::new(100.0).dist(&a, &b), 1.0);
    }

    #[test]
    fn empty_conventions() {
        let a = pts(&[(1.0, 1.0)]);
        assert_eq!(Cms::new(100.0).dist(&[], &[]), 0.0);
        assert_eq!(Cms::new(100.0).dist(&a, &[]), 1.0);
    }

    proptest! {
        #[test]
        fn distance_in_unit_interval(seed in 0u64..200, n in 1usize..30, m in 1usize..30) {
            let mut rng = det_rng(seed);
            let a = random_walk(n, &mut rng);
            let b = random_walk(m, &mut rng);
            let d = Cms::new(50.0).dist(&a, &b);
            prop_assert!((0.0..=1.0).contains(&d));
        }

        #[test]
        fn axioms_on_random_walks(seed in 0u64..200, n in 1usize..20, m in 1usize..20) {
            let mut rng = det_rng(seed);
            let a = random_walk(n, &mut rng);
            let b = random_walk(m, &mut rng);
            assert_basic_axioms(&Cms::new(50.0), &a, &b);
        }
    }
}
