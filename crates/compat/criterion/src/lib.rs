//! Offline, std-only stand-in for the `criterion` benchmark harness.
//!
//! Behaviour mirrors the real crate's CLI contract: `cargo bench`
//! passes `--bench`, which triggers full measurement (warm-up, then
//! timed batches until the measurement window closes, reporting the
//! mean with min/max over batches). When the binary runs *without*
//! `--bench` (as `cargo test` does for bench targets), every benchmark
//! closure executes exactly once as a smoke test — keeping the test
//! suite fast while still compiling and exercising each benchmark.
//!
//! There is no statistical analysis, HTML report, or saved baseline;
//! results print to stdout, one line per benchmark.

// Stdout IS this harness's product; the clippy.toml print ban targets
// the t2vec library crates (see DESIGN.md §10).
#![allow(clippy::disallowed_macros)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// An identifier for one benchmark within a group: `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter label.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

/// Things acceptable as a benchmark id: a [`BenchmarkId`] or any string.
pub trait IntoBenchmarkId {
    /// Converts into a [`BenchmarkId`].
    fn into_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher<'a> {
    mode: Mode,
    /// Mean/min/max nanoseconds per iteration, filled by [`Bencher::iter`].
    result: &'a mut Option<Sample>,
}

#[derive(Clone, Copy)]
struct Mode {
    measure: bool,
    warm_up: Duration,
    measurement: Duration,
}

/// One benchmark's timing summary (nanoseconds per iteration).
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Mean over all measured batches.
    pub mean_ns: f64,
    /// Fastest batch.
    pub min_ns: f64,
    /// Slowest batch.
    pub max_ns: f64,
    /// Total iterations measured.
    pub iterations: u64,
}

impl Bencher<'_> {
    /// Calls `f` repeatedly and records how long each call takes.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if !self.mode.measure {
            std::hint::black_box(f());
            return;
        }
        // Warm-up: run until the warm-up window closes, measuring a
        // rough per-iteration cost to size the measurement batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.mode.warm_up || warm_iters == 0 {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        // Aim for ~20 batches over the measurement window, at least one
        // iteration per batch.
        let target_batches = 20u64;
        let batch_iters = ((self.mode.measurement.as_secs_f64()
            / target_batches as f64
            / per_iter.max(1e-9)) as u64)
            .max(1);

        let mut total_ns = 0.0f64;
        let mut total_iters = 0u64;
        let mut min_ns = f64::INFINITY;
        let mut max_ns = 0.0f64;
        let measure_start = Instant::now();
        while measure_start.elapsed() < self.mode.measurement || total_iters == 0 {
            let batch_start = Instant::now();
            for _ in 0..batch_iters {
                std::hint::black_box(f());
            }
            let ns = batch_start.elapsed().as_nanos() as f64 / batch_iters as f64;
            total_ns += ns * batch_iters as f64;
            total_iters += batch_iters;
            min_ns = min_ns.min(ns);
            max_ns = max_ns.max(ns);
        }
        *self.result = Some(Sample {
            mean_ns: total_ns / total_iters as f64,
            min_ns,
            max_ns,
            iterations: total_iters,
        });
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// The benchmark driver. Groups share its measurement configuration.
pub struct Criterion {
    measure: bool,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let measure = std::env::args().any(|a| a == "--bench");
        Criterion {
            measure,
            warm_up: Duration::from_secs(3),
            measurement: Duration::from_secs(5),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            measure: self.measure,
            warm_up: self.warm_up,
            measurement: self.measurement,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// A named set of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    measure: bool,
    warm_up: Duration,
    measurement: Duration,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the warm-up window (full-measurement mode only).
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement window (full-measurement mode only).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Accepted for API compatibility; the shim sizes batches by time,
    /// not by a fixed sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let label = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{id}", self.name)
        };
        let mut result = None;
        let mut bencher = Bencher {
            mode: Mode {
                measure: self.measure,
                warm_up: self.warm_up,
                measurement: self.measurement,
            },
            result: &mut result,
        };
        f(&mut bencher);
        match result {
            Some(s) => println!(
                "{label:<56} time: [{} {} {}]  ({} iters)",
                format_ns(s.min_ns),
                format_ns(s.mean_ns),
                format_ns(s.max_ns),
                s.iterations
            ),
            None if !self.measure => println!("{label:<56} ok (smoke test)"),
            None => println!("{label:<56} (no measurement: closure never called iter)"),
        }
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        self.run(&id.id, f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id, |b| f(b, input));
        self
    }

    /// Ends the group (printing is per-benchmark, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Re-export matching `criterion::black_box` (std's since 1.66).
pub use std::hint::black_box;

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_closure_once() {
        // Unit tests see no `--bench` arg, so Criterion::default() is in
        // smoke mode and `iter` must call the closure exactly once.
        let mut criterion = Criterion::default();
        assert!(!criterion.measure);
        let mut calls = 0;
        let mut group = criterion.benchmark_group("g");
        group.bench_function("case", |b| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 1);
    }

    #[test]
    fn benchmark_id_formats_function_and_parameter() {
        let id = BenchmarkId::new("matmul", "64x256");
        assert_eq!(id.id, "matmul/64x256");
    }
}
