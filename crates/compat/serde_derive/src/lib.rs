//! Offline `#[derive(Serialize, Deserialize)]` for the serde shim.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`
//! — the build environment has no registry access). Supports exactly
//! the shapes this workspace derives:
//!
//! - structs with named fields, tuple structs (newtype and n-ary),
//!   unit structs;
//! - enums with unit, newtype/tuple, and struct variants, encoded
//!   externally tagged like real serde (`"Unit"`,
//!   `{"Variant": payload}`);
//! - the container attribute `#[serde(from = "T", into = "T")]` and the
//!   field attributes `#[serde(default)]` and `#[serde(skip)]` (the
//!   latter on struct fields only: omitted when serializing, filled
//!   from `Default` when deserializing).
//!
//! Generics, lifetimes, and renaming attributes are intentionally
//! unsupported and fail with a compile-time panic naming the offender.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the shim's `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive shim: generated invalid Serialize impl")
}

/// Derives the shim's `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive shim: generated invalid Deserialize impl")
}

struct Field {
    name: String,
    default: bool,
    /// `#[serde(skip)]` — omitted on serialize, `Default` on deserialize.
    skip: bool,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Kind {
    UnitStruct,
    TupleStruct(usize),
    NamedStruct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    kind: Kind,
    /// `#[serde(from = "T")]` — deserialize via `T` then `From<T>`.
    from: Option<String>,
    /// `#[serde(into = "T")]` — serialize by converting into `T`.
    into: Option<String>,
}

/// Attribute facts gathered while skipping `#[...]` tokens.
#[derive(Default)]
struct SerdeAttrs {
    default: bool,
    skip: bool,
    from: Option<String>,
    into: Option<String>,
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    let attrs = parse_attrs(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);

    let keyword = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic type `{name}` is not supported");
    }

    let kind = match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => panic!("serde_derive shim: unexpected struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive shim: unexpected enum body for `{name}`: {other:?}"),
        },
        kw => panic!("serde_derive shim: expected struct or enum, found `{kw}`"),
    };

    Item {
        name,
        kind,
        from: attrs.from,
        into: attrs.into,
    }
}

/// Consumes leading `#[...]` attributes, extracting serde facts.
fn parse_attrs(tokens: &[TokenTree], pos: &mut usize) -> SerdeAttrs {
    let mut attrs = SerdeAttrs::default();
    while matches!(tokens.get(*pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *pos += 1;
        let Some(TokenTree::Group(g)) = tokens.get(*pos) else {
            panic!("serde_derive shim: `#` not followed by attribute brackets");
        };
        parse_one_attr(g.stream(), &mut attrs);
        *pos += 1;
    }
    attrs
}

fn parse_one_attr(stream: TokenStream, attrs: &mut SerdeAttrs) {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(name)) if name.to_string() == "serde" => {}
        _ => return, // doc comment or unrelated attribute
    }
    let Some(TokenTree::Group(args)) = tokens.get(1) else {
        return;
    };
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut i = 0;
    while i < args.len() {
        match &args[i] {
            TokenTree::Ident(id) => {
                let key = id.to_string();
                let has_value =
                    matches!(args.get(i + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=');
                match (key.as_str(), has_value) {
                    ("default", false) => {
                        attrs.default = true;
                        i += 1;
                    }
                    ("skip", false) => {
                        attrs.skip = true;
                        i += 1;
                    }
                    ("from", true) | ("into", true) => {
                        let Some(TokenTree::Literal(lit)) = args.get(i + 2) else {
                            panic!("serde_derive shim: #[serde({key} = ...)] expects a string");
                        };
                        let ty = unquote(&lit.to_string());
                        if key == "from" {
                            attrs.from = Some(ty);
                        } else {
                            attrs.into = Some(ty);
                        }
                        i += 3;
                    }
                    _ => panic!("serde_derive shim: unsupported attribute #[serde({key})]"),
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
            other => panic!("serde_derive shim: unexpected token in #[serde(...)]: {other}"),
        }
    }
}

fn unquote(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(tokens.get(*pos), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *pos += 1;
        // `pub(crate)` and friends.
        if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *pos += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(id)) => {
            *pos += 1;
            id.to_string()
        }
        other => panic!("serde_derive shim: expected identifier, found {other:?}"),
    }
}

/// Skips a type expression up to a top-level `,` (exclusive), tracking
/// angle-bracket depth so commas inside generic arguments don't split.
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tok) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *pos += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let attrs = parse_attrs(&tokens, &mut pos);
        skip_visibility(&tokens, &mut pos);
        let name = expect_ident(&tokens, &mut pos);
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => {
                panic!("serde_derive shim: expected `:` after field `{name}`, found {other:?}")
            }
        }
        skip_type(&tokens, &mut pos);
        pos += 1; // the `,` (or past the end)
        fields.push(Field {
            name,
            default: attrs.default,
            skip: attrs.skip,
        });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut count = 0;
    let mut pos = 0;
    while pos < tokens.len() {
        let mut sink = SerdeAttrs::default();
        // Field attributes are legal on tuple fields too; skip them.
        while matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(pos) {
                parse_one_attr(g.stream(), &mut sink);
            }
            pos += 1;
        }
        skip_visibility(&tokens, &mut pos);
        skip_type(&tokens, &mut pos);
        pos += 1;
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        parse_attrs(&tokens, &mut pos);
        let name = expect_ident(&tokens, &mut pos);
        let shape = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantShape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ---- code generation ----

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(via) = &item.into {
        format!(
            "let via: {via} = ::std::convert::Into::into(::std::clone::Clone::clone(self));\n\
             ::serde::Serialize::serialize(&via)"
        )
    } else {
        match &item.kind {
            Kind::UnitStruct => "::serde::Value::Null".to_string(),
            Kind::TupleStruct(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
            Kind::TupleStruct(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                    .collect();
                format!(
                    "::serde::Value::Array(::std::vec::Vec::from([{}]))",
                    items.join(", ")
                )
            }
            Kind::NamedStruct(fields) => {
                let pairs: Vec<String> = fields
                    .iter()
                    .filter(|f| !f.skip)
                    .map(|f| {
                        let fname = &f.name;
                        format!(
                            "(::std::string::String::from(\"{fname}\"), \
                             ::serde::Serialize::serialize(&self.{fname}))"
                        )
                    })
                    .collect();
                format!(
                    "::serde::Value::Object(::std::vec::Vec::from([{}]))",
                    pairs.join(", ")
                )
            }
            Kind::Enum(variants) => gen_serialize_enum(name, variants),
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_serialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.shape {
            VariantShape::Unit => arms.push_str(&format!(
                "{name}::{vname} => \
                 ::serde::Value::Str(::std::string::String::from(\"{vname}\")),\n"
            )),
            VariantShape::Tuple(n) => {
                let binders: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                let payload = if *n == 1 {
                    "::serde::Serialize::serialize(x0)".to_string()
                } else {
                    let items: Vec<String> = binders
                        .iter()
                        .map(|b| format!("::serde::Serialize::serialize({b})"))
                        .collect();
                    format!(
                        "::serde::Value::Array(::std::vec::Vec::from([{}]))",
                        items.join(", ")
                    )
                };
                arms.push_str(&format!(
                    "{name}::{vname}({binds}) => ::serde::Value::Object(\
                     ::std::vec::Vec::from([\
                     (::std::string::String::from(\"{vname}\"), {payload})])),\n",
                    binds = binders.join(", ")
                ));
            }
            VariantShape::Named(fields) => {
                assert!(
                    fields.iter().all(|f| !f.skip),
                    "serde_derive shim: #[serde(skip)] is only supported on struct fields, \
                     not enum variant fields (variant `{vname}`)"
                );
                let binders: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                let pairs: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        let fname = &f.name;
                        format!(
                            "(::std::string::String::from(\"{fname}\"), \
                             ::serde::Serialize::serialize({fname}))"
                        )
                    })
                    .collect();
                arms.push_str(&format!(
                    "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(\
                     ::std::vec::Vec::from([\
                     (::std::string::String::from(\"{vname}\"), \
                     ::serde::Value::Object(::std::vec::Vec::from([{pairs}])))])),\n",
                    binds = binders.join(", "),
                    pairs = pairs.join(", ")
                ));
            }
        }
    }
    format!("match self {{\n{arms}}}\n")
}

/// Generates the field initialisers of a struct literal from an object's
/// field list bound to `fields`.
fn gen_named_field_inits(ty_label: &str, fields: &[Field]) -> String {
    let mut s = String::new();
    for f in fields {
        let fname = &f.name;
        if f.skip {
            // Skipped fields never consult the input (a stray key with
            // the same name is ignored, matching real serde).
            s.push_str(&format!("{fname}: ::std::default::Default::default(),\n"));
            continue;
        }
        let missing = if f.default {
            "::std::default::Default::default()".to_string()
        } else {
            format!(
                "return ::std::result::Result::Err(\
                 ::serde::Error::missing_field(\"{ty_label}\", \"{fname}\"))"
            )
        };
        s.push_str(&format!(
            "{fname}: match ::serde::__find(fields, \"{fname}\") {{\n\
             ::std::option::Option::Some(x) => ::serde::Deserialize::deserialize(x)?,\n\
             ::std::option::Option::None => {missing},\n}},\n"
        ));
    }
    s
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(via) = &item.from {
        format!(
            "let via: {via} = <{via} as ::serde::Deserialize>::deserialize(v)?;\n\
             ::std::result::Result::Ok(::std::convert::From::from(via))"
        )
    } else {
        match &item.kind {
            Kind::UnitStruct => format!(
                "match v {{\n\
                 ::serde::Value::Null => ::std::result::Result::Ok({name}),\n\
                 other => ::std::result::Result::Err(\
                 ::serde::Error::expected(\"null\", \"{name}\", other)),\n}}"
            ),
            Kind::TupleStruct(1) => {
                format!("::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(v)?))")
            }
            Kind::TupleStruct(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::deserialize(&items[{i}])?"))
                    .collect();
                format!(
                    "let items = match v {{\n\
                     ::serde::Value::Array(items) => items,\n\
                     other => return ::std::result::Result::Err(\
                     ::serde::Error::expected(\"array\", \"{name}\", other)),\n}};\n\
                     if items.len() != {n} {{\n\
                     return ::std::result::Result::Err(::serde::Error::custom(\
                     ::std::format!(\"{name}: expected {n} elements, found {{}}\", items.len())));\n}}\n\
                     ::std::result::Result::Ok({name}({}))",
                    items.join(", ")
                )
            }
            Kind::NamedStruct(fields) => {
                let inits = gen_named_field_inits(name, fields);
                format!(
                    "let fields = match v {{\n\
                     ::serde::Value::Object(fields) => fields,\n\
                     other => return ::std::result::Result::Err(\
                     ::serde::Error::expected(\"object\", \"{name}\", other)),\n}};\n\
                     ::std::result::Result::Ok({name} {{\n{inits}}})"
                )
            }
            Kind::Enum(variants) => gen_deserialize_enum(name, variants),
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(v: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut payload_arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.shape {
            VariantShape::Unit => unit_arms.push_str(&format!(
                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
            )),
            VariantShape::Tuple(1) => payload_arms.push_str(&format!(
                "\"{vname}\" => ::std::result::Result::Ok(\
                 {name}::{vname}(::serde::Deserialize::deserialize(payload)?)),\n"
            )),
            VariantShape::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::deserialize(&items[{i}])?"))
                    .collect();
                payload_arms.push_str(&format!(
                    "\"{vname}\" => {{\n\
                     let items = match payload {{\n\
                     ::serde::Value::Array(items) if items.len() == {n} => items,\n\
                     other => return ::std::result::Result::Err(\
                     ::serde::Error::expected(\"{n}-element array\", \"{name}::{vname}\", other)),\n}};\n\
                     ::std::result::Result::Ok({name}::{vname}({}))\n}}\n",
                    items.join(", ")
                ));
            }
            VariantShape::Named(fields) => {
                let inits = gen_named_field_inits(&format!("{name}::{vname}"), fields);
                payload_arms.push_str(&format!(
                    "\"{vname}\" => {{\n\
                     let fields = match payload {{\n\
                     ::serde::Value::Object(fields) => fields,\n\
                     other => return ::std::result::Result::Err(\
                     ::serde::Error::expected(\"object\", \"{name}::{vname}\", other)),\n}};\n\
                     ::std::result::Result::Ok({name}::{vname} {{\n{inits}}})\n}}\n"
                ));
            }
        }
    }
    format!(
        "match v {{\n\
         ::serde::Value::Str(tag) => match tag.as_str() {{\n{unit_arms}\
         tag => ::std::result::Result::Err(::serde::Error::unknown_variant(\"{name}\", tag)),\n}},\n\
         ::serde::Value::Object(outer) if outer.len() == 1 => {{\n\
         let (tag, payload) = &outer[0];\n\
         let _ = payload;\n\
         match tag.as_str() {{\n{payload_arms}\
         tag => ::std::result::Result::Err(::serde::Error::unknown_variant(\"{name}\", tag)),\n}}\n}}\n\
         other => ::std::result::Result::Err(::serde::Error::expected(\
         \"variant tag\", \"{name}\", other)),\n}}"
    )
}
