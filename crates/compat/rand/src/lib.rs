//! Offline, std-only stand-in for the `rand` crate.
//!
//! The build environment has no access to a crate registry, so the
//! workspace vendors the narrow slice of the `rand` API it actually
//! uses: [`Rng`] (the core source-of-randomness trait), [`RngExt`]
//! (ergonomic sampling methods, blanket-implemented for every `Rng`),
//! [`SeedableRng`], [`rngs::StdRng`] (xoshiro256++ seeded via
//! SplitMix64), [`seq::SliceRandom`], and the [`Distribution`] trait
//! consumed by the sibling `rand_distr` shim.
//!
//! Statistical quality: xoshiro256++ passes BigCrush and is more than
//! adequate for parameter initialisation, data augmentation, and
//! property-test case generation. The stream is *not* identical to the
//! real `StdRng` (ChaCha12), but every consumer in this workspace only
//! requires determinism for a fixed seed, which this crate guarantees.

/// A source of uniformly random 64-bit words.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`Rng::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly over their full domain via [`RngExt::random`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A distribution over values of type `T` (mirrors `rand::distr::Distribution`).
pub trait Distribution<T> {
    /// Draws one value from the distribution using `rng` for entropy.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Ranges usable with [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Ergonomic sampling methods, available on every [`Rng`].
pub trait RngExt: Rng {
    /// Draws a value uniformly over the full domain of `T`.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }

    /// Draws one value from `dist`.
    fn sample<T, D: Distribution<T>>(&mut self, dist: D) -> T
    where
        Self: Sized,
    {
        dist.sample(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (expanded internally).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// with SplitMix64 state expansion.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The generator's full internal state (four 64-bit words).
        ///
        /// Together with [`StdRng::from_state`] this makes the stream
        /// checkpointable: capture the state, persist it, restore it,
        /// and the restored generator continues the exact sequence.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by
        /// [`StdRng::state`].
        ///
        /// # Panics
        /// Panics on the all-zero state, which is the one fixed point
        /// xoshiro256++ can never leave (and which `seed_from_u64` can
        /// never produce).
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(
                s.iter().any(|&w| w != 0),
                "all-zero xoshiro256++ state is invalid"
            );
            StdRng { s }
        }
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related sampling helpers.

    use super::{Rng, SampleRange};

    /// In-place random shuffling of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = SampleRange::sample_from(0..=i, rng);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn state_capture_resumes_exact_stream() {
        let mut a = StdRng::seed_from_u64(9);
        for _ in 0..17 {
            let _: u64 = a.random();
        }
        let mut b = StdRng::from_state(a.state());
        assert_eq!(a, b);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    #[should_panic(expected = "all-zero")]
    fn all_zero_state_is_rejected() {
        let _ = StdRng::from_state([0; 4]);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = rng.random::<f64>();
            assert!((0.0..1.0).contains(&f));
            let g = rng.random::<f32>();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.random_range(-2.5f64..=2.5);
            assert!((-2.5..=2.5).contains(&w));
            let x = rng.random_range(-7i32..-2);
            assert!((-7..-2).contains(&x));
        }
    }

    #[test]
    fn range_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.random_range(0.0..1.0f64)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }
}
