//! Offline, std-only stand-in for the `serde_json` crate: a JSON
//! printer and recursive-descent parser over the serde shim's
//! [`Value`] data model.
//!
//! Numeric fidelity: floats print via Rust's shortest-roundtrip `f64`
//! formatting, so every finite `f32`/`f64` round-trips bit-for-bit
//! (an `f32` widens exactly to `f64` and narrows back exactly).

use std::fmt;
use std::io::{Read, Write};

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Serialization/deserialization failure.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::new(format!("io error: {e}"))
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

// ---- serialization ----

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => {
            out.push_str(&n.to_string());
        }
        Value::Int(n) => {
            out.push_str(&n.to_string());
        }
        Value::Float(f) => {
            if f.is_finite() {
                out.push_str(&f.to_string());
            } else {
                // Real serde_json refuses non-finite floats; none occur
                // in this workspace, so degrade to null rather than fail.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, v);
            }
            out.push('}');
        }
    }
}

/// Serializes `value` as a compact JSON string.
///
/// # Errors
/// Never fails for the shim's data model; the `Result` matches the real
/// crate's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize());
    Ok(out)
}

/// Serializes `value` as compact JSON into `writer`.
///
/// # Errors
/// Propagates I/O failures from `writer`.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    let s = to_string(value)?;
    writer.write_all(s.as_bytes())?;
    Ok(())
}

// ---- deserialization ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        Error::new(format!("{} at byte {}", msg.into(), self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(self.err(format!("unexpected byte `{}`", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by the
                            // writer; reject them rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("invalid \\u code point"))?;
                            s.push(c);
                        }
                        other => {
                            return Err(self.err(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    s.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err(format!("invalid number `{text}`")))
        } else {
            // Integer-looking literal. Magnitudes beyond 64 bits occur
            // when a large float printed without an exponent (Rust's
            // shortest f64 form); fall back to Float for those.
            let as_int = if text.starts_with('-') {
                text.parse::<i64>().map(Value::Int).ok()
            } else {
                text.parse::<u64>().map(Value::UInt).ok()
            };
            match as_int {
                Some(v) => Ok(v),
                None => text
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| self.err(format!("invalid number `{text}`"))),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Parses a `T` from a JSON string.
///
/// # Errors
/// Returns [`Error`] on malformed JSON or shape mismatch.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T> {
    let mut parser = Parser::new(input);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters"));
    }
    Ok(T::deserialize(&value)?)
}

/// Parses a `T` from JSON bytes.
///
/// # Errors
/// Returns [`Error`] on invalid UTF-8, malformed JSON, or shape mismatch.
pub fn from_slice<T: Deserialize>(input: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(input).map_err(|_| Error::new("invalid utf-8"))?;
    from_str(s)
}

/// Reads `reader` to the end and parses a `T` from the JSON it holds.
///
/// # Errors
/// Returns [`Error`] on I/O failure, invalid UTF-8, malformed JSON, or
/// shape mismatch.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T> {
    let mut buf = Vec::new();
    reader.read_to_end(&mut buf)?;
    from_slice(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(from_str::<u64>("123").unwrap(), 123);
        assert_eq!(from_str::<f64>("1.5e3").unwrap(), 1500.0);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn float_bits_roundtrip() {
        for x in [0.1f32, -3.25, f32::MIN_POSITIVE, 1e30, std::f32::consts::PI] {
            let s = to_string(&x).unwrap();
            let back: f32 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {s} -> {back}");
        }
    }

    #[test]
    fn nested_structures_roundtrip() {
        let v: Vec<Vec<f32>> = vec![vec![1.0, 2.5], vec![], vec![-0.125]];
        let s = to_string(&v).unwrap();
        let back: Vec<Vec<f32>> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn unicode_and_escapes_roundtrip() {
        let s = "héllo \"wörld\" — tab:\t ctrl:\u{1}".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(from_str::<Value>("not json at all").is_err());
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("123 tail").is_err());
    }

    #[test]
    fn value_preserves_object_access() {
        let v: Value = from_str("{\"config\": {}, \"vocab\": [1]}").unwrap();
        assert!(v.get("config").is_some());
        assert!(v.get("vocab").is_some());
        assert!(v.get("model").is_none());
    }

    #[test]
    fn whitespace_tolerated() {
        let v: Value = from_str(" {\n\t\"a\" : [ 1 , 2 ] , \"b\" : null }\r\n").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("b"), Some(&Value::Null));
    }
}
