//! Offline, std-only stand-in for the `serde` crate.
//!
//! The build environment has no registry access, so the workspace
//! vendors a minimal serialization framework with the same surface the
//! code actually uses: `#[derive(Serialize, Deserialize)]` (provided by
//! the sibling `serde_derive` shim), the `#[serde(default)]` and
//! `#[serde(from = "...", into = "...")]` attributes, and a JSON-shaped
//! [`Value`] data model consumed by the `serde_json` shim.
//!
//! Unlike real serde there is no `Serializer`/`Deserializer` visitor
//! machinery: [`Serialize`] renders directly into a [`Value`] tree and
//! [`Deserialize`] reads back out of one. That is exactly enough for a
//! single self-describing format (JSON), which is all this workspace
//! needs.

use std::collections::HashMap;
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (JSON data model).
///
/// Integers keep their sign split (`UInt`/`Int`) so `u64` round-trips
/// losslessly; floats are `f64` (an `f32` widens exactly, so it also
/// round-trips bit-for-bit).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object — insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` when `self` is an object, else `None`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object fields, if `self` is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The array items, if `self` is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error: a human-readable path-free description.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// A free-form error.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }

    /// "expected X, found Y" while deserializing `ty`.
    pub fn expected(what: &str, ty: &str, found: &Value) -> Self {
        Error(format!("{ty}: expected {what}, found {}", found.kind()))
    }

    /// A required field was absent.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        Error(format!("{ty}: missing field `{field}`"))
    }

    /// An enum tag matched no variant.
    pub fn unknown_variant(ty: &str, tag: &str) -> Self {
        Error(format!("{ty}: unknown variant `{tag}`"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types renderable into a [`Value`].
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn serialize(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    /// Returns [`Error`] when the value's shape does not match.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

/// Field lookup used by derived `Deserialize` impls.
#[doc(hidden)]
pub fn __find<'a>(fields: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

// ---- primitive impls ----

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", "bool", v)),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::UInt(n) => *n,
                    Value::Int(n) if *n >= 0 => *n as u64,
                    _ => return Err(Error::expected("unsigned integer", stringify!($t), v)),
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let n = *self as i64;
                if n < 0 { Value::Int(n) } else { Value::UInt(n as u64) }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n: i64 = match v {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range for i64")))?,
                    _ => return Err(Error::expected("integer", stringify!($t), v)),
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    Value::Int(n) => Ok(*n as $t),
                    _ => Err(Error::expected("number", stringify!($t), v)),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", "String", v)),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        T::deserialize(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            _ => Err(Error::expected("array", "Vec", v)),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$n.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::expected("array", "tuple", v))?;
                let expect = [$($n),+].len();
                if items.len() != expect {
                    return Err(Error::custom(format!(
                        "tuple: expected {expect} elements, found {}", items.len()
                    )));
                }
                Ok(($($t::deserialize(&items[$n])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Hash-map keys encodable as JSON object keys (strings).
pub trait MapKey: Sized {
    /// The string form of the key.
    fn to_key(&self) -> String;
    /// Parses a key back.
    ///
    /// # Errors
    /// Returns [`Error`] when the string is not a valid key.
    fn from_key(s: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_string())
    }
}

macro_rules! impl_map_key_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, Error> {
                s.parse().map_err(|_| Error::custom(format!(
                    "invalid {} map key `{s}`", stringify!($t)
                )))
            }
        }
    )*};
}

impl_map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize(&self) -> Value {
        // Sort keys so serialization is deterministic across runs
        // (HashMap iteration order is randomized by the hasher seed).
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.serialize()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: MapKey + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let fields = v
            .as_object()
            .ok_or_else(|| Error::expected("object", "HashMap", v))?;
        fields
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::deserialize(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_null_roundtrip() {
        let none: Option<u32> = None;
        assert_eq!(none.serialize(), Value::Null);
        assert_eq!(Option::<u32>::deserialize(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<u32>::deserialize(&Value::UInt(3)).unwrap(),
            Some(3)
        );
    }

    #[test]
    fn f32_widens_and_narrows_exactly() {
        let x = 0.1f32;
        let v = x.serialize();
        assert_eq!(f32::deserialize(&v).unwrap().to_bits(), x.to_bits());
    }

    #[test]
    fn negative_integers_roundtrip() {
        let v = (-42i64).serialize();
        assert_eq!(v, Value::Int(-42));
        assert_eq!(i64::deserialize(&v).unwrap(), -42);
        assert!(u32::deserialize(&v).is_err());
    }

    #[test]
    fn uint_keyed_map_roundtrips() {
        let mut m: HashMap<u64, Vec<usize>> = HashMap::new();
        m.insert(10, vec![1, 2]);
        m.insert(3, vec![]);
        let v = m.serialize();
        let back: HashMap<u64, Vec<usize>> = Deserialize::deserialize(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn value_get_walks_objects() {
        let v = Value::Object(vec![("a".into(), Value::UInt(1))]);
        assert!(v.get("a").is_some());
        assert!(v.get("b").is_none());
    }
}
