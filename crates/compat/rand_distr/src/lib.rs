//! Offline, std-only stand-in for the `rand_distr` crate: just the
//! [`StandardNormal`] distribution the workspace uses for Gaussian
//! parameter initialisation.

pub use rand::Distribution;
use rand::{Rng, Standard};

/// The standard normal distribution `N(0, 1)`, sampled via Box–Muller.
///
/// Each sample consumes two uniform draws; the second Box–Muller output
/// is discarded to keep the distribution stateless (matching the real
/// crate's ziggurat sampler, which also draws per call).
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardNormal;

fn box_muller<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] so ln(u1) is finite; u2 in [0, 1).
    let u1 = 1.0 - <f64 as Standard>::sample_standard(rng);
    let u2 = <f64 as Standard>::sample_standard(rng);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

impl Distribution<f64> for StandardNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        box_muller(rng)
    }
}

impl Distribution<f32> for StandardNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        box_muller(rng) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn moments_match_standard_normal() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.sample(StandardNormal)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn f32_sampling_compiles_with_turbofish() {
        let mut rng = StdRng::seed_from_u64(12);
        let x = rng.sample::<f32, _>(StandardNormal);
        assert!(x.is_finite());
    }
}
