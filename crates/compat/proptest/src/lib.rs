//! Offline, std-only stand-in for the `proptest` crate.
//!
//! Property tests in this workspace use a narrow slice of proptest:
//! the [`proptest!`] macro over numeric-range strategies, tuples of
//! strategies, and [`collection::vec`], plus `prop_assert!` /
//! `prop_assert_eq!`. This shim samples each property a fixed number of
//! times ([`NUM_CASES`]) from an RNG seeded by the test's name, so runs
//! are deterministic (unlike real proptest there is no shrinking — a
//! failing case panics with the sampled values visible in the assert
//! message).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Number of sampled cases per property.
pub const NUM_CASES: usize = 32;

/// A deterministic per-test RNG derived from the test's name (FNV-1a).
pub fn test_rng(name: &str) -> StdRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(hash)
}

/// A source of random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Samples one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.start..self.end)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(*self.start()..=*self.end())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// A constant "strategy" — plain values can stand in where a strategy
/// is expected (mirrors proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    //! Strategies for collections.

    use super::{RngExt, StdRng, Strategy};

    /// A strategy producing `Vec`s with lengths drawn from `len` and
    /// elements drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Builds a [`VecStrategy`]; mirrors `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.random_range(self.len.start..self.len.end);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Declares deterministic sampled property tests.
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn addition_commutes(a in 0u64..100, b in 0u64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::test_rng(stringify!($name));
                for __case in 0..$crate::NUM_CASES {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )+
    };
}

/// Asserts a property holds; panics with the formatted message otherwise.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts two expressions are equal; panics with both values otherwise.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts two expressions differ; panics with both values otherwise.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

pub mod prelude {
    //! Everything a property test needs in scope.
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples_sample_in_bounds(
            n in 1usize..10,
            (x, y) in (-1.0..1.0f64, -1.0..1.0f64),
            v in collection::vec(0u32..5, 2..6),
        ) {
            prop_assert!((1..10).contains(&n));
            prop_assert!((-1.0..1.0).contains(&x) && (-1.0..1.0).contains(&y));
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 5));
        }
    }

    #[test]
    fn test_rng_is_name_dependent_and_stable() {
        let a1: u64 = rand::RngExt::random(&mut crate::test_rng("a"));
        let a2: u64 = rand::RngExt::random(&mut crate::test_rng("a"));
        let b: u64 = rand::RngExt::random(&mut crate::test_rng("b"));
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
    }
}
