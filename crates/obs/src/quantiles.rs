//! Windowed log2-bucket latency quantiles with SLO gauges.
//!
//! A [`WindowedQuantiles`] keeps [`SUB_WINDOWS`] sub-windows, each a
//! log2-bucket histogram (the same bucket layout as
//! [`crate::metrics::Histogram`]). Time is divided into sub-window
//! epochs of `window_ns / SUB_WINDOWS`; a record lands in the
//! sub-window for its epoch, lazily recycling the slot when the epoch
//! advances (a try-lock guards the reset; racing recorders during the
//! rotation instant write into the recycled slot, an accepted
//! approximation for a latency estimator). A quantile read aggregates
//! every non-expired sub-window, so the estimate covers a sliding
//! window between `window_ns · (1 - 1/SUB_WINDOWS)` and `window_ns`
//! wide.
//!
//! Quantile estimates are the inclusive **upper bound of the covering
//! bucket** (`2^i − 1` for bucket `i`, 0 for the zero bucket): the
//! estimate always lands in the same log2 bucket as the true
//! percentile, which is the contract loadgen's SLO assertions rely on
//! (`tests` prove it against exact sorted percentiles).
//!
//! Quantile values are derived from wall-clock latencies and exist
//! only for sinks/gauges — the crate-level determinism invariant
//! applies: nothing may feed them back into computation.

use crate::metrics::{Gauge, Histogram, HIST_BUCKETS};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Sub-windows per [`WindowedQuantiles`]; reads aggregate all live ones.
pub const SUB_WINDOWS: usize = 4;

/// Default sliding-window width for registered recorders: 10 seconds.
pub const DEFAULT_WINDOW_NS: u64 = 10_000_000_000;

/// The quantiles every recorder publishes as gauges.
pub const PUBLISHED_QUANTILES: [(f64, &str); 4] =
    [(0.50, "p50"), (0.90, "p90"), (0.99, "p99"), (0.999, "p999")];

/// Gauges are republished after this many records (and on [`publish`]).
const PUBLISH_EVERY: u64 = 64;

struct SubWindow {
    /// Epoch this slot currently holds (`u64::MAX` = never used).
    epoch: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    max: AtomicU64,
}

impl SubWindow {
    fn empty() -> SubWindow {
        SubWindow {
            epoch: AtomicU64::new(u64::MAX),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn reset(&self, epoch: u64) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        self.epoch.store(epoch, Ordering::Release);
    }
}

/// Sliding-window quantile estimator over log2 buckets.
pub struct WindowedQuantiles {
    window_ns: u64,
    sub: [SubWindow; SUB_WINDOWS],
    rotating: AtomicBool,
    /// `Some` when registered: `(p50, p90, p99, p999, max)` gauges.
    gauges: Option<[&'static Gauge; 5]>,
    since_publish: AtomicU64,
}

impl WindowedQuantiles {
    /// Estimator with a sliding window `window_ns` wide.
    pub fn new(window_ns: u64) -> WindowedQuantiles {
        WindowedQuantiles {
            window_ns: window_ns.max(SUB_WINDOWS as u64),
            sub: std::array::from_fn(|_| SubWindow::empty()),
            rotating: AtomicBool::new(false),
            gauges: None,
            since_publish: AtomicU64::new(0),
        }
    }

    /// Estimator that never expires samples (one infinite window) —
    /// what a bounded run like `loadgen` wants for its final report.
    pub fn unwindowed() -> WindowedQuantiles {
        WindowedQuantiles::new(u64::MAX)
    }

    fn sub_ns(&self) -> u64 {
        (self.window_ns / SUB_WINDOWS as u64).max(1)
    }

    fn epoch_now(&self) -> u64 {
        if self.window_ns == u64::MAX {
            0
        } else {
            crate::now_ns() / self.sub_ns()
        }
    }

    /// Record one sample (latencies: nanoseconds).
    pub fn record(&self, v: u64) {
        let epoch = self.epoch_now();
        let slot = &self.sub[(epoch % SUB_WINDOWS as u64) as usize];
        let held = slot.epoch.load(Ordering::Acquire);
        if held != epoch
            && self
                .rotating
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
        {
            // Double-check under the lock: a racing recorder may have
            // rotated this slot while we acquired the flag.
            if slot.epoch.load(Ordering::Acquire) != epoch {
                slot.reset(epoch);
            }
            self.rotating.store(false, Ordering::Release);
        }
        slot.buckets[Histogram::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        slot.count.fetch_add(1, Ordering::Relaxed);
        slot.max.fetch_max(v, Ordering::Relaxed);

        if let Some(_gauges) = &self.gauges {
            let n = self.since_publish.fetch_add(1, Ordering::Relaxed) + 1;
            if n % PUBLISH_EVERY == 0 {
                self.publish();
            }
        }
    }

    /// Aggregate the live sub-windows: (bucket counts, total, max).
    fn aggregate(&self) -> ([u64; HIST_BUCKETS], u64, u64) {
        let now = self.epoch_now();
        let oldest_live = now.saturating_sub(SUB_WINDOWS as u64 - 1);
        let mut buckets = [0u64; HIST_BUCKETS];
        let mut total = 0u64;
        let mut max = 0u64;
        for sub in &self.sub {
            let e = sub.epoch.load(Ordering::Acquire);
            let live = if self.window_ns == u64::MAX {
                e != u64::MAX
            } else {
                e != u64::MAX && e >= oldest_live && e <= now
            };
            if !live {
                continue;
            }
            for (acc, b) in buckets.iter_mut().zip(&sub.buckets) {
                *acc += b.load(Ordering::Relaxed);
            }
            total += sub.count.load(Ordering::Relaxed);
            max = max.max(sub.max.load(Ordering::Relaxed));
        }
        (buckets, total, max)
    }

    /// Samples currently inside the window.
    pub fn count(&self) -> u64 {
        self.aggregate().1
    }

    /// Maximum sample currently inside the window (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.aggregate().2
    }

    /// Estimate quantile `q` (in `[0, 1]`) over the window: the
    /// inclusive upper bound of the log2 bucket containing the rank-`q`
    /// sample. 0 when the window is empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let (buckets, total, _) = self.aggregate();
        if total == 0 {
            return 0;
        }
        // Rank of the q-th sample, 1-based, clamped into [1, total]:
        // the smallest value v such that count(<= v) >= q * total.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, c) in buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(HIST_BUCKETS - 1)
    }

    /// Push the current quantiles into this recorder's SLO gauges (a
    /// no-op for unregistered estimators).
    pub fn publish(&self) {
        if let Some(gauges) = &self.gauges {
            for ((q, _), g) in PUBLISHED_QUANTILES.iter().zip(gauges.iter()) {
                g.set(self.quantile(*q) as f64);
            }
            gauges[4].set(self.max() as f64);
        }
    }
}

/// Inclusive upper bound of log2 bucket `i`: 0 for the zero bucket,
/// else `2^i − 1` (the largest value whose `bucket_index` is `i`).
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

static RECORDERS: Mutex<Vec<(&'static str, &'static WindowedQuantiles)>> = Mutex::new(Vec::new());

/// Fetch-or-register the SLO recorder named `name` (leaked, like metric
/// handles). Registered recorders use the default 10 s sliding window
/// and publish `slo.<name>.p50_ns` … `.p999_ns` and `.max_ns` gauges,
/// refreshed every few records and on [`publish_all`].
pub fn recorder(name: &'static str) -> &'static WindowedQuantiles {
    let mut reg = RECORDERS.lock().unwrap_or_else(|e| e.into_inner());
    if let Some((_, r)) = reg.iter().find(|(n, _)| *n == name) {
        return r;
    }
    let mut wq = WindowedQuantiles::new(DEFAULT_WINDOW_NS);
    let mut gauges: Vec<&'static Gauge> = PUBLISHED_QUANTILES
        .iter()
        .map(|(_, label)| {
            crate::metrics::gauge(Box::leak(format!("slo.{name}.{label}_ns").into_boxed_str()))
        })
        .collect();
    gauges.push(crate::metrics::gauge(Box::leak(
        format!("slo.{name}.max_ns").into_boxed_str(),
    )));
    wq.gauges = Some([gauges[0], gauges[1], gauges[2], gauges[3], gauges[4]]);
    let leaked: &'static WindowedQuantiles = Box::leak(Box::new(wq));
    reg.push((name, leaked));
    leaked
}

/// Refresh every registered recorder's gauges (call before
/// [`crate::metrics::emit`] so the final snapshot carries up-to-date
/// SLO values).
pub fn publish_all() {
    let reg = RECORDERS.lock().unwrap_or_else(|e| e.into_inner());
    for (_, r) in reg.iter() {
        r.publish();
    }
}

/// Per-call-site cached SLO-recorder handle, mirroring `counter!`.
#[macro_export]
macro_rules! slo_recorder {
    ($name:expr) => {{
        static SLOT: ::std::sync::OnceLock<&'static $crate::quantiles::WindowedQuantiles> =
            ::std::sync::OnceLock::new();
        *SLOT.get_or_init(|| $crate::quantiles::recorder($name))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact percentile by the retired sorted-Vec convention: the
    /// element at 1-based rank `ceil(q * n)`.
    fn exact_percentile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    #[test]
    fn upper_bounds_round_trip_bucket_index() {
        for i in 0..HIST_BUCKETS {
            let ub = bucket_upper_bound(i);
            assert_eq!(Histogram::bucket_index(ub), i, "bucket {i}");
        }
    }

    #[test]
    fn quantiles_match_exact_within_one_bucket() {
        // A skewed latency-like distribution with ties and outliers.
        let mut samples: Vec<u64> = Vec::new();
        let mut x = 9_876_543u64;
        for i in 0..5_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let base = 1_000 + (x >> 50); // ~1–17k ns
            let spike = if i % 97 == 0 { 1_000_000 } else { 0 };
            samples.push(base + spike);
        }
        let wq = WindowedQuantiles::unwindowed();
        for &s in &samples {
            wq.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for (q, label) in PUBLISHED_QUANTILES {
            let exact = exact_percentile(&sorted, q);
            let est = wq.quantile(q);
            let be = Histogram::bucket_index(exact);
            let bq = Histogram::bucket_index(est);
            assert!(
                be.abs_diff(bq) <= 1,
                "{label}: exact {exact} (bucket {be}) vs estimate {est} (bucket {bq})"
            );
        }
        assert_eq!(wq.max(), *sorted.last().unwrap());
        assert_eq!(wq.count(), samples.len() as u64);
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let wq = WindowedQuantiles::unwindowed();
        assert_eq!(wq.quantile(0.99), 0);
        wq.record(0);
        assert_eq!(wq.quantile(0.5), 0);
        wq.record(u64::MAX);
        assert_eq!(wq.quantile(1.0), u64::MAX);
    }

    #[test]
    fn registered_recorder_publishes_gauges() {
        let r = recorder("test.quantiles.op");
        for v in 1..=200u64 {
            r.record(v * 1000);
        }
        publish_all();
        let p50 = crate::metrics::gauge("slo.test.quantiles.op.p50_ns").get();
        let p999 = crate::metrics::gauge("slo.test.quantiles.op.p999_ns").get();
        assert!(p50 > 0.0 && p999 >= p50, "p50={p50} p999={p999}");
        let maxg = crate::metrics::gauge("slo.test.quantiles.op.max_ns").get();
        assert_eq!(maxg, 200_000.0);
        // Same name returns the same recorder.
        assert_eq!(recorder("test.quantiles.op").count(), 200);
    }

    #[test]
    fn windowed_rotation_expires_old_samples() {
        // A tiny window (1 µs sub-epochs) so epochs advance during the
        // test; record, wait out the window, then confirm expiry.
        let wq = WindowedQuantiles::new(4_000);
        wq.record(5_000);
        assert!(wq.count() >= 1);
        let deadline = std::time::Instant::now() + std::time::Duration::from_millis(50);
        while std::time::Instant::now() < deadline {
            std::hint::spin_loop();
        }
        // All sub-windows are now stale; nothing should aggregate.
        assert_eq!(wq.count(), 0);
        assert_eq!(wq.quantile(0.5), 0);
    }
}
