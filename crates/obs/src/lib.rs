//! Pure-std observability for the t2vec workspace.
//!
//! Three pillars, all dependency-free:
//!
//! * **Structured logging** — leveled events with a static target
//!   (`"nn.train"`, `"core.ckpt"`, …), a formatted message and typed
//!   key/value fields, filtered by a [`Filter`] parsed from the
//!   `T2VEC_LOG` environment variable (`"info"`,
//!   `"warn,core.ckpt=debug"`, …).
//! * **Spans** — RAII guards ([`Span`]) that emit an enter event and an
//!   exit event carrying the elapsed wall-clock nanoseconds, with a
//!   per-thread nesting depth.
//! * **Metrics** — a process-global registry of named counters, gauges
//!   and log-scale histograms (see [`metrics`]).
//!
//! Events flow to pluggable [`Sink`]s: [`StderrSink`] (human-readable),
//! [`JsonlSink`] (one JSON object per line, machine-readable) and
//! [`MemorySink`] (test capture).
//!
//! # The determinism invariant
//!
//! Instrumented code must uphold one rule: **wall-clock time only ever
//! flows *into* the event stream, never into computation**. Sinks and
//! filters may observe timing; nothing downstream of a sink may feed a
//! model weight, an RNG, a report field that participates in canonical
//! JSON, or any control-flow decision in the numeric pipeline. Metric
//! *values* derived from deterministic data (MAC counts, token counts,
//! candidate-set sizes) are fine; latencies are confined to sinks.
//! `tests/obs_invariance.rs` at the workspace root enforces this by
//! running the paper harness with observability off and at `trace`
//! verbosity across a thread matrix and asserting byte-identical
//! reports and checkpoints.
//!
//! Everything is a no-op (one relaxed atomic load) until a filter and at
//! least one sink are installed, so library crates can instrument
//! unconditionally.

pub mod context;
pub mod flight;
pub mod metrics;
pub mod quantiles;
mod sink;

pub use context::SpanContext;
pub use sink::{JsonlSink, MemorySink, StderrSink};

use std::cell::Cell;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// Severity of an event. Lower numeric value = more severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    Error = 1,
    Warn = 2,
    Info = 3,
    Debug = 4,
    Trace = 5,
}

impl Level {
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parse a level token. `"off"` yields `None`; unknown tokens also
    /// yield `None` (callers treat both as "no logging").
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }

    pub(crate) fn from_u8(v: u8) -> Option<Level> {
        match v {
            1 => Some(Level::Error),
            2 => Some(Level::Warn),
            3 => Some(Level::Info),
            4 => Some(Level::Debug),
            5 => Some(Level::Trace),
            _ => None,
        }
    }
}

/// A typed field value attached to an event or metric snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

macro_rules! impl_field_from {
    ($($ty:ty => $variant:ident as $conv:ty),* $(,)?) => {
        $(impl From<$ty> for FieldValue {
            fn from(v: $ty) -> Self { FieldValue::$variant(v as $conv) }
        })*
    };
}

impl_field_from!(
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64, u64 => U64 as u64,
    usize => U64 as u64,
    i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64, i64 => I64 as i64,
    isize => I64 as i64,
    f32 => F64 as f64, f64 => F64 as f64,
);

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// What kind of record an [`Event`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A plain log event.
    Event,
    /// A span was entered.
    SpanEnter,
    /// A span was exited; `elapsed_ns` is set.
    SpanExit,
    /// A metrics-registry snapshot entry (see [`metrics::emit`]).
    Metric,
}

impl EventKind {
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Event => "event",
            EventKind::SpanEnter => "span_enter",
            EventKind::SpanExit => "span_exit",
            EventKind::Metric => "metric",
        }
    }
}

/// One record flowing through the sinks.
#[derive(Debug, Clone)]
pub struct Event {
    pub kind: EventKind,
    pub level: Level,
    /// Static dotted component name, e.g. `"tensor.par"` or `"core.ckpt"`.
    pub target: &'static str,
    /// Human-readable message (span name for span records, metric name
    /// for metric records).
    pub message: String,
    pub fields: Vec<(&'static str, FieldValue)>,
    /// Wall-clock nanoseconds a span was open; only on [`EventKind::SpanExit`].
    pub elapsed_ns: Option<u64>,
    /// Span nesting depth on the emitting thread at record time.
    pub depth: usize,
    /// Monotonic nanoseconds since the first obs call in this process.
    pub ts_ns: u64,
    /// Trace this record belongs to (0 = none). Span records carry their
    /// own trace; plain events carry the enclosing span's.
    pub trace_id: u64,
    /// For span enter/exit records: the span's own id. For plain events
    /// and metrics: the enclosing span's id (0 = none).
    pub span_id: u64,
    /// For span enter/exit records: the parent span's id (0 = root).
    /// Always 0 on plain events — they attach via `span_id`.
    pub parent_span: u64,
}

impl Event {
    /// Look up a field by key.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// Destination for events. Implementations must be thread-safe; `record`
/// is called from whichever thread emitted the event.
pub trait Sink: Send + Sync {
    fn record(&self, event: &Event);
    fn flush(&self) {}
}

/// Level filter: a default level plus `target=level` prefix directives,
/// as parsed from `T2VEC_LOG`.
#[derive(Debug, Clone)]
pub struct Filter {
    /// 0 = off, else Level as u8.
    default: u8,
    /// Longest-prefix-wins directives, sorted by descending prefix length.
    directives: Vec<(String, u8)>,
}

impl Filter {
    /// Filter that rejects everything.
    pub const fn off() -> Filter {
        Filter {
            default: 0,
            directives: Vec::new(),
        }
    }

    /// Filter that accepts everything up to `level` for all targets.
    pub fn at(level: Level) -> Filter {
        Filter {
            default: level as u8,
            directives: Vec::new(),
        }
    }

    /// Parse a spec like `"info"`, `"off"`, `"warn,core.ckpt=debug"` or
    /// `"debug,tensor=trace,eval=info"`. Malformed tokens never panic in
    /// library context — they are dropped — but each one is reported in
    /// the returned warning list so [`init_from_env`] can surface them
    /// instead of silently accepting a typo'd spec.
    ///
    /// Rejected (with a warning): directives with an empty target
    /// (`"=debug"`), directives with an unknown level (`"core=loud"`),
    /// and bare words that are neither a level nor `"off"`.
    pub fn parse_with_warnings(spec: &str) -> (Filter, Vec<String>) {
        let mut default = 0u8;
        let mut directives: Vec<(String, u8)> = Vec::new();
        let mut warnings = Vec::new();
        for token in spec.split(',') {
            let token = token.trim();
            if token.is_empty() {
                continue;
            }
            if let Some((target, level)) = token.split_once('=') {
                let target = target.trim();
                let level = level.trim();
                if target.is_empty() {
                    warnings.push(format!("directive {token:?} has an empty target"));
                    continue;
                }
                // `target=off` is a meaningful directive (silence one
                // subtree); anything else unknown is a typo.
                let lv = match Level::parse(level) {
                    Some(l) => l as u8,
                    None if level.eq_ignore_ascii_case("off") => 0,
                    None => {
                        warnings.push(format!(
                            "directive {token:?} has unknown level {level:?} \
                             (expected error|warn|info|debug|trace|off)"
                        ));
                        continue;
                    }
                };
                directives.push((target.to_string(), lv));
            } else if let Some(lv) = Level::parse(token) {
                default = lv as u8;
            } else if token.eq_ignore_ascii_case("off") {
                default = 0;
            } else {
                warnings.push(format!(
                    "unknown token {token:?} (expected a level or target=level)"
                ));
            }
        }
        directives.sort_by(|a, b| b.0.len().cmp(&a.0.len()).then(a.0.cmp(&b.0)));
        (
            Filter {
                default,
                directives,
            },
            warnings,
        )
    }

    /// [`Filter::parse_with_warnings`] discarding the warning list.
    pub fn parse(spec: &str) -> Filter {
        Filter::parse_with_warnings(spec).0
    }

    /// The most verbose level this filter can ever pass (as u8, 0 = off).
    pub fn max_level(&self) -> u8 {
        self.directives
            .iter()
            .map(|(_, lv)| *lv)
            .fold(self.default, u8::max)
    }

    /// Raise the default level to at least `level`, keeping directives.
    pub fn raise_to(&mut self, level: Level) {
        if self.default < level as u8 {
            self.default = level as u8;
        }
    }

    /// Longest matching directive wins; a directive matches its exact
    /// target and dot-separated descendants (`core` governs `core` and
    /// `core.ckpt`, never `corette`).
    fn level_for(&self, target: &str) -> u8 {
        for (prefix, lv) in &self.directives {
            if target == prefix.as_str()
                || (target.starts_with(prefix.as_str())
                    && target.as_bytes().get(prefix.len()) == Some(&b'.'))
            {
                return *lv;
            }
        }
        self.default
    }

    /// Would an event at `level` for `target` pass this filter?
    pub fn enabled(&self, target: &str, level: Level) -> bool {
        level as u8 <= self.level_for(target)
    }
}

// ---------------------------------------------------------------------------
// Global state
// ---------------------------------------------------------------------------

/// Fast-path gate: the max level any installed sink could receive.
/// 0 (off) whenever no sinks are installed or the filter is off, so the
/// instrumented hot paths pay one relaxed load and a branch.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(0);

struct Config {
    filter: Filter,
    sinks: Vec<Arc<dyn Sink>>,
}

/// Filter and sinks live under one lock so reconfiguration cannot
/// deadlock on lock ordering and readers see a consistent pair.
static CONFIG: RwLock<Config> = RwLock::new(Config {
    filter: Filter::off(),
    sinks: Vec::new(),
});

thread_local! {
    static SPAN_DEPTH: Cell<usize> = const { Cell::new(0) };
}

fn start_instant() -> Instant {
    static T0: OnceLock<Instant> = OnceLock::new();
    *T0.get_or_init(Instant::now)
}

/// Monotonic nanoseconds since the first obs call in this process.
/// Never a wall-clock date: timestamps are only for ordering/latency
/// inside one run's event stream.
pub fn now_ns() -> u64 {
    start_instant().elapsed().as_nanos() as u64
}

fn recompute_gate(cfg: &Config) {
    // An armed flight recorder counts as a destination: events must keep
    // flowing into the per-thread rings even when no sink is installed.
    let gate = if cfg.sinks.is_empty() && !flight::is_armed() {
        0
    } else {
        cfg.filter.max_level()
    };
    MAX_LEVEL.store(gate, Ordering::Release);
}

/// Re-derive the fast-path gate from the current config (called by
/// [`flight::arm`]/[`flight::disarm`], which change whether events have
/// a destination without touching filter or sinks).
pub(crate) fn refresh_gate() {
    let cfg = CONFIG.read().unwrap_or_else(|e| e.into_inner());
    recompute_gate(&cfg);
}

/// Install the level filter.
pub fn set_filter(filter: Filter) {
    let mut cfg = CONFIG.write().unwrap_or_else(|e| e.into_inner());
    cfg.filter = filter;
    recompute_gate(&cfg);
}

/// Replace the sink set. An empty vector turns observability fully off.
pub fn set_sinks(sinks: Vec<Arc<dyn Sink>>) {
    flush();
    let mut cfg = CONFIG.write().unwrap_or_else(|e| e.into_inner());
    cfg.sinks = sinks;
    recompute_gate(&cfg);
}

/// Append a sink, keeping existing ones.
pub fn add_sink(sink: Arc<dyn Sink>) {
    let mut cfg = CONFIG.write().unwrap_or_else(|e| e.into_inner());
    cfg.sinks.push(sink);
    recompute_gate(&cfg);
}

/// Flush every installed sink (JSONL sinks write whole lines already,
/// but call this before process exit or before reading a sink's file).
pub fn flush() {
    for sink in CONFIG
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .sinks
        .iter()
    {
        sink.flush();
    }
}

/// Cheap check: would an event at `level` for `target` reach any sink?
#[inline]
pub fn enabled(target: &str, level: Level) -> bool {
    if level as u8 > MAX_LEVEL.load(Ordering::Acquire) {
        return false;
    }
    CONFIG
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .filter
        .enabled(target, level)
}

/// Deliver a fully-formed event to every sink (and, when armed, the
/// flight recorder). Callers normally go through the macros or
/// [`Span`]; [`metrics::emit`] uses this directly.
pub fn dispatch(event: Event) {
    flight::record(&event);
    for sink in CONFIG
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .sinks
        .iter()
    {
        sink.record(&event);
    }
}

/// Build and deliver a plain log event (macro support; prefer the
/// `info!`/`debug!`/… macros which also do the `enabled` check). The
/// event is stamped with the thread's current span context so it
/// attaches to its enclosing span in a reconstructed trace.
pub fn dispatch_simple(
    level: Level,
    target: &'static str,
    message: String,
    fields: Vec<(&'static str, FieldValue)>,
) {
    let ctx = context::current();
    dispatch(Event {
        kind: EventKind::Event,
        level,
        target,
        message,
        fields,
        elapsed_ns: None,
        depth: SPAN_DEPTH.with(|d| d.get()),
        ts_ns: now_ns(),
        trace_id: ctx.trace_id,
        span_id: ctx.span_id,
        parent_span: 0,
    });
}

/// Configure from the environment:
///
/// * `T2VEC_LOG` — filter spec (falls back to `default_spec` when unset);
/// * `T2VEC_METRICS_OUT` — path of a JSONL file to stream events to;
/// * `T2VEC_FLIGHT` — flight-recorder ring capacity per thread
///   (`"1"`/`"on"` select the default capacity);
/// * `T2VEC_FLIGHT_DUMP` — crash-file path; arms the recorder and
///   installs a panic hook that dumps the rings there.
///
/// A stderr pretty-printer is installed whenever the filter passes
/// anything; it prints at the *requested* verbosity even if the JSONL
/// sink forces the global filter higher (a metrics file or an armed
/// flight recorder implies at least `debug` so span/metric records
/// actually reach it). Malformed filter directives are dropped and
/// reported as `obs.filter` warning events (and on stderr) instead of
/// being silently accepted.
pub fn init_from_env(default_spec: &str) {
    let spec = std::env::var("T2VEC_LOG").unwrap_or_else(|_| default_spec.to_string());
    let (mut filter, filter_warnings) = Filter::parse_with_warnings(&spec);
    let stderr_verbosity = Level::from_u8(filter.max_level());

    let mut sinks: Vec<Arc<dyn Sink>> = Vec::new();
    if let Some(v) = stderr_verbosity {
        sinks.push(Arc::new(StderrSink::with_verbosity(v)));
    }
    match std::env::var("T2VEC_METRICS_OUT") {
        Ok(path) if !path.is_empty() => match JsonlSink::create(&path) {
            Ok(s) => {
                sinks.push(Arc::new(s));
                filter.raise_to(Level::Debug);
            }
            Err(err) => {
                // Observability must never take the process down.
                use std::io::Write;
                let _ = writeln!(
                    std::io::stderr(),
                    "t2vec-obs: cannot open T2VEC_METRICS_OUT={path}: {err}"
                );
            }
        },
        _ => {}
    }

    let flight_capacity = std::env::var("T2VEC_FLIGHT").ok().and_then(|v| {
        let v = v.trim().to_ascii_lowercase();
        match v.as_str() {
            "" | "0" | "off" | "false" => None,
            "1" | "on" | "true" => Some(flight::DEFAULT_CAPACITY),
            _ => v.parse::<usize>().ok().filter(|&n| n > 0),
        }
    });
    let flight_dump = std::env::var("T2VEC_FLIGHT_DUMP")
        .ok()
        .filter(|p| !p.is_empty());
    if flight_capacity.is_some() || flight_dump.is_some() {
        flight::arm(flight_capacity.unwrap_or(flight::DEFAULT_CAPACITY));
        filter.raise_to(Level::Debug);
        if let Some(path) = flight_dump {
            flight::install_panic_hook(path);
        }
    }

    set_filter(filter);
    set_sinks(sinks);

    for w in &filter_warnings {
        use std::io::Write;
        let _ = writeln!(std::io::stderr(), "t2vec-obs: T2VEC_LOG: {w}");
        crate::warn!(target: "obs.filter", "bad filter directive: {}", w);
    }
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// RAII span guard: emits a [`EventKind::SpanEnter`] record at `Debug`
/// on creation and a [`EventKind::SpanExit`] record with the elapsed
/// wall-clock nanoseconds on drop. Inert (no clock read, no allocation
/// beyond the pre-built field vec) when the filter rejects the target.
///
/// A live span allocates a [`SpanContext`]: [`Span::enter`] parents
/// under the thread's current context (inheriting its trace id, or
/// starting a fresh trace when there is none), [`Span::enter_root`]
/// always starts a fresh trace. While live, the span's context is the
/// thread-local current context, so nested spans and plain events
/// attach under it; drop restores the previous context *defensively*
/// (only if current still equals this span's context), which makes
/// out-of-LIFO drops — a batch worker releasing per-request member
/// spans after the batch ran — safe.
pub struct Span {
    inner: Option<SpanInner>,
}

struct SpanInner {
    target: &'static str,
    name: &'static str,
    start: Instant,
    ctx: context::SpanContext,
    parent: context::SpanContext,
}

enum SpanParent {
    /// Parent under the thread's current context, become current.
    Ambient,
    /// Start a fresh trace, become current.
    Root,
    /// Parent under an explicit (usually remote) context; do NOT touch
    /// the thread-local current context.
    Explicit(context::SpanContext),
}

impl Span {
    /// Open a span parented under the thread's current context.
    pub fn enter(
        target: &'static str,
        name: &'static str,
        fields: Vec<(&'static str, FieldValue)>,
    ) -> Span {
        Span::enter_inner(target, name, fields, SpanParent::Ambient)
    }

    /// Open a span that starts a fresh trace regardless of the ambient
    /// context (request entry points: one service call = one trace).
    pub fn enter_root(
        target: &'static str,
        name: &'static str,
        fields: Vec<(&'static str, FieldValue)>,
    ) -> Span {
        Span::enter_inner(target, name, fields, SpanParent::Root)
    }

    /// Open a span parented under an explicit context captured on
    /// another thread, *without* installing it as this thread's current
    /// context — the shape a batch worker needs when it holds one span
    /// per batch member concurrently (none of them can own the worker's
    /// ambient context). A `NONE` parent starts a fresh trace.
    pub fn enter_detached(
        parent: context::SpanContext,
        target: &'static str,
        name: &'static str,
        fields: Vec<(&'static str, FieldValue)>,
    ) -> Span {
        Span::enter_inner(target, name, fields, SpanParent::Explicit(parent))
    }

    fn enter_inner(
        target: &'static str,
        name: &'static str,
        fields: Vec<(&'static str, FieldValue)>,
        kind: SpanParent,
    ) -> Span {
        if !enabled(target, Level::Debug) {
            return Span { inner: None };
        }
        let parent = match kind {
            SpanParent::Ambient => context::current(),
            SpanParent::Root => context::SpanContext::NONE,
            SpanParent::Explicit(ctx) => ctx,
        };
        let ctx = context::SpanContext {
            trace_id: if parent.is_some() {
                parent.trace_id
            } else {
                context::next_trace_id()
            },
            span_id: context::next_span_id(),
        };
        let depth = SPAN_DEPTH.with(|d| {
            let depth = d.get();
            d.set(depth + 1);
            depth
        });
        if !matches!(kind, SpanParent::Explicit(_)) {
            context::set_current(ctx);
        }
        dispatch(Event {
            kind: EventKind::SpanEnter,
            level: Level::Debug,
            target,
            message: name.to_string(),
            fields,
            elapsed_ns: None,
            depth,
            ts_ns: now_ns(),
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            parent_span: parent.span_id,
        });
        Span {
            inner: Some(SpanInner {
                target,
                name,
                start: Instant::now(),
                ctx,
                parent,
            }),
        }
    }

    /// Whether this span is live (filter passed at creation).
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The span's context ([`SpanContext::NONE`] when the filter
    /// rejected it). Capture this to hand causality across a thread
    /// hop (see [`context::attach`]).
    pub fn context(&self) -> context::SpanContext {
        self.inner
            .as_ref()
            .map(|i| i.ctx)
            .unwrap_or(context::SpanContext::NONE)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let elapsed = inner.start.elapsed().as_nanos() as u64;
            let depth = SPAN_DEPTH.with(|d| {
                let depth = d.get().saturating_sub(1);
                d.set(depth);
                depth
            });
            context::restore_current(inner.ctx, inner.parent);
            dispatch(Event {
                kind: EventKind::SpanExit,
                level: Level::Debug,
                target: inner.target,
                message: inner.name.to_string(),
                fields: Vec::new(),
                elapsed_ns: Some(elapsed),
                depth,
                ts_ns: now_ns(),
                trace_id: inner.ctx.trace_id,
                span_id: inner.ctx.span_id,
                parent_span: inner.parent.span_id,
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Internal: shared body of the leveled logging macros.
#[macro_export]
macro_rules! log_at {
    ($lvl:expr, target: $target:expr, $fmt:literal $(, $arg:expr)* $(; $($k:ident = $v:expr),+ $(,)?)?) => {{
        let lvl = $lvl;
        if $crate::enabled($target, lvl) {
            $crate::dispatch_simple(
                lvl,
                $target,
                ::std::format!($fmt $(, $arg)*),
                ::std::vec![$($( (stringify!($k), $crate::FieldValue::from($v)) ),+)?],
            );
        }
    }};
}

/// `error!(target: "core.ckpt", "failed to {}", what; path = p)`
#[macro_export]
macro_rules! error {
    (target: $target:expr, $($rest:tt)*) => {
        $crate::log_at!($crate::Level::Error, target: $target, $($rest)*)
    };
}

#[macro_export]
macro_rules! warn {
    (target: $target:expr, $($rest:tt)*) => {
        $crate::log_at!($crate::Level::Warn, target: $target, $($rest)*)
    };
}

#[macro_export]
macro_rules! info {
    (target: $target:expr, $($rest:tt)*) => {
        $crate::log_at!($crate::Level::Info, target: $target, $($rest)*)
    };
}

#[macro_export]
macro_rules! debug {
    (target: $target:expr, $($rest:tt)*) => {
        $crate::log_at!($crate::Level::Debug, target: $target, $($rest)*)
    };
}

#[macro_export]
macro_rules! trace {
    (target: $target:expr, $($rest:tt)*) => {
        $crate::log_at!($crate::Level::Trace, target: $target, $($rest)*)
    };
}

/// `let _g = span!(target: "eval.harness", "exp1"; rate = 0.3);`
#[macro_export]
macro_rules! span {
    (target: $target:expr, $name:expr $(; $($k:ident = $v:expr),+ $(,)?)?) => {
        $crate::Span::enter(
            $target,
            $name,
            ::std::vec![$($( (stringify!($k), $crate::FieldValue::from($v)) ),+)?],
        )
    };
}

/// Like [`span!`] but always starts a fresh trace: use at request entry
/// points so one service call = one trace id, regardless of what the
/// calling thread had open.
#[macro_export]
macro_rules! span_root {
    (target: $target:expr, $name:expr $(; $($k:ident = $v:expr),+ $(,)?)?) => {
        $crate::Span::enter_root(
            $target,
            $name,
            ::std::vec![$($( (stringify!($k), $crate::FieldValue::from($v)) ),+)?],
        )
    };
}

/// Per-call-site cached counter handle: `counter!("tensor.matmul.calls").incr()`.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static SLOT: ::std::sync::OnceLock<&'static $crate::metrics::Counter> =
            ::std::sync::OnceLock::new();
        *SLOT.get_or_init(|| $crate::metrics::counter($name))
    }};
}

/// Per-call-site cached gauge handle.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static SLOT: ::std::sync::OnceLock<&'static $crate::metrics::Gauge> =
            ::std::sync::OnceLock::new();
        *SLOT.get_or_init(|| $crate::metrics::gauge($name))
    }};
}

/// Per-call-site cached histogram handle.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static SLOT: ::std::sync::OnceLock<&'static $crate::metrics::Histogram> =
            ::std::sync::OnceLock::new();
        *SLOT.get_or_init(|| $crate::metrics::histogram($name))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing() {
        assert_eq!(Level::parse("info"), Some(Level::Info));
        assert_eq!(Level::parse("  TRACE "), Some(Level::Trace));
        assert_eq!(Level::parse("off"), None);
        assert_eq!(Level::parse("bogus"), None);
        assert!(Level::Error < Level::Trace);
    }

    #[test]
    fn filter_spec_parsing_and_prefix_match() {
        let f = Filter::parse("warn,core.ckpt=debug,core=info");
        assert!(f.enabled("spatial", Level::Warn));
        assert!(!f.enabled("spatial", Level::Info));
        assert!(f.enabled("core.trainer", Level::Info));
        assert!(!f.enabled("core.trainer", Level::Debug));
        // Longest prefix wins over the shorter `core=` directive.
        assert!(f.enabled("core.ckpt", Level::Debug));
        assert_eq!(f.max_level(), Level::Debug as u8);

        let off = Filter::parse("off");
        assert_eq!(off.max_level(), 0);
        assert!(!off.enabled("anything", Level::Error));

        let mut raised = Filter::parse("warn");
        raised.raise_to(Level::Debug);
        assert!(raised.enabled("x", Level::Debug));
    }

    #[test]
    fn filter_rejects_malformed_directives_with_warnings() {
        let (f, warns) =
            Filter::parse_with_warnings("info, =debug ,core=loud,wat,serve=off,nn=TRACE");
        // The well-formed pieces still apply…
        assert!(f.enabled("anything", Level::Info));
        assert!(
            !f.enabled("serve.store", Level::Error),
            "serve=off silences"
        );
        assert!(
            f.enabled("nn.train", Level::Trace),
            "levels are case-insensitive"
        );
        // …and every malformed directive produced a warning instead of
        // being silently dropped.
        assert_eq!(warns.len(), 3, "{warns:?}");
        assert!(warns[0].contains("empty target"), "{warns:?}");
        assert!(warns[1].contains("unknown level \"loud\""), "{warns:?}");
        assert!(warns[2].contains("unknown token \"wat\""), "{warns:?}");
        // Well-formed specs warn nothing.
        assert!(Filter::parse_with_warnings("warn,core.ckpt=trace")
            .1
            .is_empty());
        assert!(Filter::parse_with_warnings("off").1.is_empty());
        assert!(Filter::parse_with_warnings("").1.is_empty());
    }

    #[test]
    fn longest_prefix_matches_on_module_boundaries() {
        let f = Filter::parse("warn,core=info,core.ckpt=debug,core.ckpt.io=error");
        // Exact and descendant matches.
        assert!(f.enabled("core", Level::Info));
        assert!(!f.enabled("core", Level::Debug));
        assert!(f.enabled("core.trainer", Level::Info));
        // Longest prefix wins at every depth.
        assert!(f.enabled("core.ckpt", Level::Debug));
        assert!(f.enabled("core.ckpt.store", Level::Debug));
        assert!(!f.enabled("core.ckpt.io", Level::Warn));
        assert!(f.enabled("core.ckpt.io", Level::Error));
        // A directive never matches mid-identifier: `corette` is not
        // under `core`, so it gets the default.
        assert!(f.enabled("corette", Level::Warn));
        assert!(!f.enabled("corette", Level::Info));
        // Same-length directives are deterministic (sorted by name).
        let g = Filter::parse("abcd=debug,abce=error");
        assert!(g.enabled("abcd", Level::Debug));
        assert!(!g.enabled("abce", Level::Warn));
    }

    #[test]
    fn field_value_conversions() {
        assert_eq!(FieldValue::from(3usize), FieldValue::U64(3));
        assert_eq!(FieldValue::from(-2i32), FieldValue::I64(-2));
        assert_eq!(FieldValue::from(1.5f32), FieldValue::F64(1.5));
        assert_eq!(FieldValue::from(true), FieldValue::Bool(true));
        assert_eq!(FieldValue::from("x"), FieldValue::Str("x".to_string()));
    }
}
