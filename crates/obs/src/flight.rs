//! Flight recorder: per-thread lock-free ring buffers retaining the
//! last N events, dumpable to a crash file on panic or on demand.
//!
//! Every event that passes the filter is copied into the recording
//! thread's ring ([`record`] is called from [`crate::dispatch`] before
//! the sinks run). Each ring slot is a fixed block of `AtomicU64`s
//! guarded by a per-slot sequence word (a seqlock): the writer bumps
//! the sequence to odd, stores the payload, then bumps it to even with
//! `Release`; [`dump`] reads the sequence with `Acquire` on both sides
//! of the payload read and discards the slot if it was odd or changed.
//! The record path is wait-free — no locks, no allocation after the
//! ring exists — so it is safe to call from any instrumented hot path,
//! and a concurrent dump can never block or corrupt a writer.
//!
//! Messages and targets are truncated to a fixed byte budget per slot
//! (the recorder is a black box for post-mortems, not an archival
//! sink). Dumps serialise every surviving slot across every thread
//! that ever recorded, sorted by timestamp, as JSONL — written with
//! the same atomic protocol snapshots use (temp file + fsync + rename)
//! so a half-written crash file is never observed under the final
//! name.
//!
//! The recorder is subordinate to the global filter: it sees exactly
//! the events the sinks see. Arming it counts as having a destination,
//! so events flow into the rings even with no sinks installed
//! (see `recompute_gate`).

use crate::{Event, EventKind, Level};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Ring capacity (slots per thread) used when arming without an
/// explicit capacity (`T2VEC_FLIGHT=1`/`on`).
pub const DEFAULT_CAPACITY: usize = 1024;

/// Byte budget for the message text in one slot.
const MSG_BYTES: usize = 48;
/// Byte budget for the target in one slot.
const TGT_BYTES: usize = 32;
const MSG_WORDS: usize = MSG_BYTES / 8;
const TGT_WORDS: usize = TGT_BYTES / 8;

/// One recorded event, fixed-size, all-atomic so the seqlock protocol
/// needs no `unsafe` and no locks.
struct Slot {
    /// Seqlock word: odd while a write is in progress; each completed
    /// write leaves it at a new even value.
    seq: AtomicU64,
    ts_ns: AtomicU64,
    /// Packed: kind (8 bits) | level (8) | depth (16) | msg_len (16) | tgt_len (16).
    meta: AtomicU64,
    trace_id: AtomicU64,
    span_id: AtomicU64,
    parent_span: AtomicU64,
    /// `u64::MAX` encodes "no elapsed time" (not a span exit).
    elapsed_ns: AtomicU64,
    msg: [AtomicU64; MSG_WORDS],
    tgt: [AtomicU64; TGT_WORDS],
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            ts_ns: AtomicU64::new(0),
            meta: AtomicU64::new(0),
            trace_id: AtomicU64::new(0),
            span_id: AtomicU64::new(0),
            parent_span: AtomicU64::new(0),
            elapsed_ns: AtomicU64::new(u64::MAX),
            msg: std::array::from_fn(|_| AtomicU64::new(0)),
            tgt: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

fn kind_code(kind: EventKind) -> u64 {
    match kind {
        EventKind::Event => 0,
        EventKind::SpanEnter => 1,
        EventKind::SpanExit => 2,
        EventKind::Metric => 3,
    }
}

fn kind_from_code(code: u64) -> EventKind {
    match code {
        1 => EventKind::SpanEnter,
        2 => EventKind::SpanExit,
        3 => EventKind::Metric,
        _ => EventKind::Event,
    }
}

fn pack_bytes(words: &[AtomicU64], bytes: &[u8]) {
    for (i, w) in words.iter().enumerate() {
        let mut buf = [0u8; 8];
        let start = i * 8;
        if start < bytes.len() {
            let end = (start + 8).min(bytes.len());
            buf[..end - start].copy_from_slice(&bytes[start..end]);
        }
        w.store(u64::from_le_bytes(buf), Ordering::Relaxed);
    }
}

fn unpack_bytes(words: &[u64], len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    for w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out.truncate(len);
    out
}

/// Truncate `s` to at most `max` bytes on a char boundary.
fn clamp_utf8(s: &str, max: usize) -> &str {
    if s.len() <= max {
        return s;
    }
    let mut end = max;
    while end > 0 && !s.is_char_boundary(end) {
        end -= 1;
    }
    &s[..end]
}

/// One thread's ring. The owning thread is the only writer; dumps read
/// concurrently via the per-slot seqlock.
struct FlightRing {
    /// Stable label for the dump (`thread-name` or `ThreadId(..)`).
    label: String,
    slots: Box<[Slot]>,
    /// Total events ever written; next slot is `head % capacity`.
    head: AtomicU64,
}

impl FlightRing {
    fn new(label: String, capacity: usize) -> FlightRing {
        FlightRing {
            label,
            slots: (0..capacity.max(1)).map(|_| Slot::empty()).collect(),
            head: AtomicU64::new(0),
        }
    }

    fn write(&self, event: &Event) {
        let idx = self.head.load(Ordering::Relaxed) as usize % self.slots.len();
        let slot = &self.slots[idx];
        // Odd = in progress. Release on the closing store publishes the
        // payload to any reader that sees the new even value.
        let seq0 = slot.seq.load(Ordering::Relaxed);
        slot.seq.store(seq0 | 1, Ordering::Relaxed);
        std::sync::atomic::fence(Ordering::Release);

        let msg = clamp_utf8(&event.message, MSG_BYTES);
        let tgt = clamp_utf8(event.target, TGT_BYTES);
        slot.ts_ns.store(event.ts_ns, Ordering::Relaxed);
        slot.meta.store(
            kind_code(event.kind)
                | (event.level as u64) << 8
                | (event.depth.min(0xffff) as u64) << 16
                | (msg.len() as u64) << 32
                | (tgt.len() as u64) << 48,
            Ordering::Relaxed,
        );
        slot.trace_id.store(event.trace_id, Ordering::Relaxed);
        slot.span_id.store(event.span_id, Ordering::Relaxed);
        slot.parent_span.store(event.parent_span, Ordering::Relaxed);
        slot.elapsed_ns
            .store(event.elapsed_ns.unwrap_or(u64::MAX), Ordering::Relaxed);
        pack_bytes(&slot.msg, msg.as_bytes());
        pack_bytes(&slot.tgt, tgt.as_bytes());

        slot.seq
            .store((seq0 | 1).wrapping_add(1), Ordering::Release);
        self.head.fetch_add(1, Ordering::Relaxed);
    }

    /// Seqlock read of one slot; `None` if empty, torn or in-flight.
    fn read_slot(&self, idx: usize) -> Option<FlightEntry> {
        let slot = &self.slots[idx];
        let seq_before = slot.seq.load(Ordering::Acquire);
        if seq_before == 0 || seq_before & 1 == 1 {
            return None;
        }
        let ts_ns = slot.ts_ns.load(Ordering::Relaxed);
        let meta = slot.meta.load(Ordering::Relaxed);
        let trace_id = slot.trace_id.load(Ordering::Relaxed);
        let span_id = slot.span_id.load(Ordering::Relaxed);
        let parent_span = slot.parent_span.load(Ordering::Relaxed);
        let elapsed = slot.elapsed_ns.load(Ordering::Relaxed);
        let msg_words: Vec<u64> = slot.msg.iter().map(|w| w.load(Ordering::Relaxed)).collect();
        let tgt_words: Vec<u64> = slot.tgt.iter().map(|w| w.load(Ordering::Relaxed)).collect();
        std::sync::atomic::fence(Ordering::Acquire);
        if slot.seq.load(Ordering::Relaxed) != seq_before {
            return None;
        }
        let msg_len = ((meta >> 32) & 0xffff) as usize;
        let tgt_len = ((meta >> 48) & 0xffff) as usize;
        Some(FlightEntry {
            thread: self.label.clone(),
            ts_ns,
            kind: kind_from_code(meta & 0xff),
            level: Level::from_u8(((meta >> 8) & 0xff) as u8).unwrap_or(Level::Trace),
            depth: ((meta >> 16) & 0xffff) as usize,
            target: String::from_utf8_lossy(&unpack_bytes(&tgt_words, tgt_len)).into_owned(),
            message: String::from_utf8_lossy(&unpack_bytes(&msg_words, msg_len)).into_owned(),
            trace_id,
            span_id,
            parent_span,
            elapsed_ns: (elapsed != u64::MAX).then_some(elapsed),
        })
    }
}

/// One decoded flight-recorder entry (as written to the dump file).
#[derive(Debug, Clone)]
pub struct FlightEntry {
    pub thread: String,
    pub ts_ns: u64,
    pub kind: EventKind,
    pub level: Level,
    pub depth: usize,
    pub target: String,
    pub message: String,
    pub trace_id: u64,
    pub span_id: u64,
    pub parent_span: u64,
    pub elapsed_ns: Option<u64>,
}

/// 0 = disarmed; otherwise the per-thread ring capacity.
static ARMED_CAPACITY: AtomicUsize = AtomicUsize::new(0);

/// Every ring ever created, including those of exited threads (their
/// last events stay dumpable — that is the point of a crash recorder).
/// Locked only at thread-ring creation and during dumps, never on the
/// record path.
static RINGS: Mutex<Vec<Arc<FlightRing>>> = Mutex::new(Vec::new());

thread_local! {
    static MY_RING: std::cell::RefCell<Option<Arc<FlightRing>>> =
        const { std::cell::RefCell::new(None) };
}

/// Whether the recorder is armed (rings accept events).
pub fn is_armed() -> bool {
    ARMED_CAPACITY.load(Ordering::Acquire) != 0
}

/// Arm the recorder: every thread that subsequently records gets a ring
/// of `capacity` slots. Counts as an event destination, so the fast
/// gate opens even with no sinks installed.
pub fn arm(capacity: usize) {
    ARMED_CAPACITY.store(capacity.max(1), Ordering::Release);
    crate::refresh_gate();
}

/// Disarm: stop recording (existing ring contents stay dumpable).
pub fn disarm() {
    ARMED_CAPACITY.store(0, Ordering::Release);
    crate::refresh_gate();
}

/// Copy an event into the calling thread's ring. Called by
/// [`crate::dispatch`]; a single relaxed load when disarmed.
pub(crate) fn record(event: &Event) {
    let capacity = ARMED_CAPACITY.load(Ordering::Acquire);
    if capacity == 0 {
        return;
    }
    MY_RING.with(|cell| {
        let mut cell = cell.borrow_mut();
        let ring = cell.get_or_insert_with(|| {
            let t = std::thread::current();
            let label = t
                .name()
                .map(|n| n.to_string())
                .unwrap_or_else(|| format!("{:?}", t.id()));
            let ring = Arc::new(FlightRing::new(label, capacity));
            RINGS
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(Arc::clone(&ring));
            ring
        });
        ring.write(event);
    });
}

/// Read every surviving slot across all rings, sorted by timestamp.
pub fn entries() -> Vec<FlightEntry> {
    let rings: Vec<Arc<FlightRing>> = RINGS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .cloned()
        .collect();
    let mut out = Vec::new();
    for ring in rings {
        for idx in 0..ring.slots.len() {
            if let Some(entry) = ring.read_slot(idx) {
                out.push(entry);
            }
        }
    }
    out.sort_by(|a, b| a.ts_ns.cmp(&b.ts_ns).then(a.thread.cmp(&b.thread)));
    out
}

fn entry_json(e: &FlightEntry) -> String {
    let mut line = String::with_capacity(160);
    line.push_str("{\"thread\":\"");
    crate::sink::push_escaped(&mut line, &e.thread);
    line.push_str("\",\"ts_ns\":");
    line.push_str(&e.ts_ns.to_string());
    line.push_str(",\"kind\":\"");
    line.push_str(e.kind.as_str());
    line.push_str("\",\"level\":\"");
    line.push_str(e.level.as_str());
    line.push_str("\",\"target\":\"");
    crate::sink::push_escaped(&mut line, &e.target);
    line.push_str("\",\"msg\":\"");
    crate::sink::push_escaped(&mut line, &e.message);
    line.push('"');
    if e.depth > 0 {
        line.push_str(&format!(",\"depth\":{}", e.depth));
    }
    if e.trace_id != 0 {
        line.push_str(&format!(",\"trace\":{}", e.trace_id));
    }
    if e.span_id != 0 {
        line.push_str(&format!(",\"span\":{}", e.span_id));
    }
    if e.parent_span != 0 {
        line.push_str(&format!(",\"parent\":{}", e.parent_span));
    }
    if let Some(ns) = e.elapsed_ns {
        line.push_str(&format!(",\"elapsed_ns\":{ns}"));
    }
    line.push('}');
    line
}

/// Dump every ring to `path` as JSONL, via the snapshot §9 atomic-write
/// protocol (temp file in the same directory + fsync + rename) so a
/// crash mid-dump never leaves a torn file under the final name.
/// Returns the number of entries written.
pub fn dump<P: AsRef<Path>>(path: P) -> io::Result<usize> {
    let path = path.as_ref();
    let entries = entries();
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    std::fs::create_dir_all(&parent)?;
    let tmp = parent.join(format!(
        ".flight-{}-{}.tmp",
        std::process::id(),
        crate::now_ns()
    ));
    {
        let mut f = std::fs::File::create(&tmp)?;
        let mut buf = String::with_capacity(entries.len() * 160);
        for e in &entries {
            buf.push_str(&entry_json(e));
            buf.push('\n');
        }
        f.write_all(buf.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Ok(dir) = std::fs::File::open(&parent) {
        let _ = dir.sync_all();
    }
    Ok(entries.len())
}

/// Crash-file path used by the panic hook.
static DUMP_PATH: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Install (once) a panic hook that dumps the rings to `path`, then
/// chains to the previously installed hook. Calling again only updates
/// the path.
pub fn install_panic_hook<P: Into<PathBuf>>(path: P) {
    *DUMP_PATH.lock().unwrap_or_else(|e| e.into_inner()) = Some(path.into());
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let path = DUMP_PATH.lock().unwrap_or_else(|e| e.into_inner()).clone();
            if let Some(path) = path {
                match dump(&path) {
                    Ok(n) => {
                        let _ = writeln!(
                            io::stderr(),
                            "t2vec-obs: flight recorder dumped {n} events to {}",
                            path.display()
                        );
                    }
                    Err(err) => {
                        let _ = writeln!(io::stderr(), "t2vec-obs: flight dump failed: {err}");
                    }
                }
            }
            prev(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(msg: &str, ts: u64) -> Event {
        Event {
            kind: EventKind::Event,
            level: Level::Debug,
            target: "flight.test",
            message: msg.to_string(),
            fields: Vec::new(),
            elapsed_ns: None,
            depth: 1,
            ts_ns: ts,
            trace_id: 7,
            span_id: 9,
            parent_span: 3,
        }
    }

    #[test]
    fn ring_wraps_and_survives_roundtrip() {
        let ring = FlightRing::new("t".into(), 4);
        for i in 0..10u64 {
            ring.write(&ev(&format!("event-{i}"), i));
        }
        let mut got: Vec<FlightEntry> = (0..4).filter_map(|i| ring.read_slot(i)).collect();
        got.sort_by_key(|e| e.ts_ns);
        // Capacity 4, 10 writes: only the last 4 remain.
        assert_eq!(got.len(), 4);
        assert_eq!(got[0].message, "event-6");
        assert_eq!(got[3].message, "event-9");
        assert_eq!(got[0].trace_id, 7);
        assert_eq!(got[0].span_id, 9);
        assert_eq!(got[0].parent_span, 3);
        assert_eq!(got[0].depth, 1);
        assert_eq!(got[0].target, "flight.test");
    }

    #[test]
    fn long_messages_truncate_on_char_boundary() {
        let ring = FlightRing::new("t".into(), 2);
        let long = "é".repeat(40); // 80 bytes of 2-byte chars
        ring.write(&ev(&long, 1));
        let entry = ring.read_slot(0).unwrap();
        assert!(entry.message.len() <= MSG_BYTES);
        assert!(entry.message.chars().all(|c| c == 'é'));
        assert_eq!(clamp_utf8("abc", 10), "abc");
        assert_eq!(clamp_utf8("日本語", 4), "日");
    }

    #[test]
    fn concurrent_writer_and_reader_never_tear() {
        let ring = Arc::new(FlightRing::new("t".into(), 8));
        let w = Arc::clone(&ring);
        let writer = std::thread::spawn(move || {
            for i in 0..20_000u64 {
                w.write(&ev(&format!("msg-{i:05}"), i));
            }
        });
        // Read concurrently; every successfully read slot must be
        // internally consistent (message matches its timestamp).
        for _ in 0..2_000 {
            for idx in 0..8 {
                if let Some(e) = ring.read_slot(idx) {
                    assert_eq!(e.message, format!("msg-{:05}", e.ts_ns));
                }
            }
        }
        writer.join().unwrap();
    }

    #[test]
    fn entry_json_shape() {
        let e = FlightEntry {
            thread: "worker-1".into(),
            ts_ns: 42,
            kind: EventKind::SpanExit,
            level: Level::Debug,
            depth: 2,
            target: "serve.store".into(),
            message: "knn".into(),
            trace_id: 5,
            span_id: 6,
            parent_span: 4,
            elapsed_ns: Some(1000),
        };
        let line = entry_json(&e);
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"kind\":\"span_exit\""));
        assert!(line.contains("\"trace\":5"));
        assert!(line.contains("\"elapsed_ns\":1000"));
    }
}
