//! Built-in event sinks: stderr pretty-printer, JSONL file writer and
//! in-memory capture for tests.

use crate::{Event, EventKind, FieldValue, Level, Sink};
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// Human-readable one-line-per-event printer on stderr.
///
/// Has its own verbosity cap independent of the global filter, so a
/// JSONL sink can receive `debug`/`trace` records while the terminal
/// stays at `info` (or `warn` under `--quiet`).
pub struct StderrSink {
    verbosity: Level,
}

impl StderrSink {
    pub fn new() -> StderrSink {
        StderrSink::with_verbosity(Level::Trace)
    }

    pub fn with_verbosity(verbosity: Level) -> StderrSink {
        StderrSink { verbosity }
    }
}

impl Default for StderrSink {
    fn default() -> Self {
        StderrSink::new()
    }
}

impl Sink for StderrSink {
    fn record(&self, event: &Event) {
        if event.level > self.verbosity {
            return;
        }
        // Span-enter records add little over their exit twin on a
        // terminal; keep the pretty stream to events, exits and metrics.
        if event.kind == EventKind::SpanEnter {
            return;
        }
        let mut line = String::with_capacity(96);
        let secs = event.ts_ns as f64 / 1e9;
        line.push_str(&format!(
            "[{secs:9.3}s {:5} {}] ",
            event.level.as_str().to_ascii_uppercase(),
            event.target
        ));
        for _ in 0..event.depth {
            line.push_str("  ");
        }
        line.push_str(&event.message);
        if let Some(ns) = event.elapsed_ns {
            line.push_str(&format!(" ({})", fmt_duration_ns(ns)));
        }
        for (k, v) in &event.fields {
            line.push_str(&format!(" {k}={v}"));
        }
        line.push('\n');
        // Single write so concurrent threads do not interleave lines;
        // ignore errors (observability must never take the process down).
        let _ = io::stderr().lock().write_all(line.as_bytes());
    }
}

fn fmt_duration_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// One JSON object per line. Writes are buffered: the underlying file
/// is flushed after [`JsonlSink::DEFAULT_FLUSH_EVERY`] buffered
/// records or when [`JsonlSink::DEFAULT_FLUSH_INTERVAL_NS`] has passed
/// since the last flush, whichever comes first — high-rate tracing
/// amortises the syscall, low-rate streams still hit disk promptly.
/// `obs::flush()` (which `set_sinks` and the CLI exit path call) and
/// `Drop` force out everything buffered, so no event is lost at an
/// orderly process exit. The JSON is hand-rolled because obs is
/// dependency-free by design; `push_escaped` covers the full
/// control-character range required by RFC 8259.
pub struct JsonlSink {
    out: Mutex<JsonlInner>,
    flush_every: usize,
    flush_interval_ns: u64,
}

struct JsonlInner {
    w: BufWriter<File>,
    pending: usize,
    last_flush_ns: u64,
}

impl JsonlSink {
    /// Buffered records that trigger a flush.
    pub const DEFAULT_FLUSH_EVERY: usize = 64;
    /// Nanoseconds since the last flush that trigger one (200 ms).
    pub const DEFAULT_FLUSH_INTERVAL_NS: u64 = 200_000_000;

    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<JsonlSink> {
        JsonlSink::with_policy(
            path,
            Self::DEFAULT_FLUSH_EVERY,
            Self::DEFAULT_FLUSH_INTERVAL_NS,
        )
    }

    /// Create with an explicit flush policy. `flush_every = 1` restores
    /// the old flush-per-record behaviour.
    pub fn with_policy<P: AsRef<Path>>(
        path: P,
        flush_every: usize,
        flush_interval_ns: u64,
    ) -> io::Result<JsonlSink> {
        if let Some(parent) = path.as_ref().parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = File::create(path)?;
        Ok(JsonlSink {
            out: Mutex::new(JsonlInner {
                w: BufWriter::new(file),
                pending: 0,
                last_flush_ns: crate::now_ns(),
            }),
            flush_every: flush_every.max(1),
            flush_interval_ns,
        })
    }
}

impl Sink for JsonlSink {
    fn record(&self, event: &Event) {
        let mut line = String::with_capacity(160);
        line.push_str("{\"kind\":\"");
        line.push_str(event.kind.as_str());
        line.push_str("\",\"ts_ns\":");
        line.push_str(&event.ts_ns.to_string());
        line.push_str(",\"level\":\"");
        line.push_str(event.level.as_str());
        line.push_str("\",\"target\":\"");
        push_escaped(&mut line, event.target);
        line.push_str("\",\"msg\":\"");
        push_escaped(&mut line, &event.message);
        line.push('"');
        if event.depth > 0 {
            line.push_str(&format!(",\"depth\":{}", event.depth));
        }
        if event.trace_id != 0 {
            line.push_str(&format!(",\"trace\":{}", event.trace_id));
        }
        if event.span_id != 0 {
            line.push_str(&format!(",\"span\":{}", event.span_id));
        }
        if event.parent_span != 0 {
            line.push_str(&format!(",\"parent\":{}", event.parent_span));
        }
        if let Some(ns) = event.elapsed_ns {
            line.push_str(&format!(",\"elapsed_ns\":{ns}"));
        }
        if !event.fields.is_empty() {
            line.push_str(",\"fields\":{");
            for (i, (k, v)) in event.fields.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                line.push('"');
                push_escaped(&mut line, k);
                line.push_str("\":");
                push_json_value(&mut line, v);
            }
            line.push('}');
        }
        line.push_str("}\n");
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        let _ = out.w.write_all(line.as_bytes());
        out.pending += 1;
        let now = crate::now_ns();
        if out.pending >= self.flush_every
            || now.saturating_sub(out.last_flush_ns) >= self.flush_interval_ns
        {
            let _ = out.w.flush();
            out.pending = 0;
            out.last_flush_ns = now;
        }
    }

    fn flush(&self) {
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        let _ = out.w.flush();
        out.pending = 0;
        out.last_flush_ns = crate::now_ns();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        Sink::flush(self);
    }
}

fn push_json_value(out: &mut String, v: &FieldValue) {
    match v {
        FieldValue::U64(n) => out.push_str(&n.to_string()),
        FieldValue::I64(n) => out.push_str(&n.to_string()),
        FieldValue::F64(x) => {
            if x.is_finite() {
                // f64 Display is shortest-roundtrip in Rust; always
                // valid JSON for finite values.
                let s = x.to_string();
                out.push_str(&s);
            } else {
                // NaN/inf are not representable in JSON.
                out.push_str("null");
            }
        }
        FieldValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        FieldValue::Str(s) => {
            out.push('"');
            push_escaped(out, s);
            out.push('"');
        }
    }
}

pub(crate) fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Captures every event in memory; made for assertions in tests.
#[derive(Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// Clone out everything captured so far.
    pub fn events(&self) -> Vec<Event> {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Drain and return everything captured so far.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn clear(&self) {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }

    pub fn len(&self) -> usize {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for MemorySink {
    fn record(&self, event: &Event) {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        let mut s = String::new();
        push_escaped(&mut s, "a\"b\\c\nd\te\u{1}");
        assert_eq!(s, "a\\\"b\\\\c\\nd\\te\\u0001");
    }

    #[test]
    fn json_values() {
        let mut s = String::new();
        push_json_value(&mut s, &FieldValue::F64(1.5));
        s.push(' ');
        push_json_value(&mut s, &FieldValue::F64(f64::NAN));
        s.push(' ');
        push_json_value(&mut s, &FieldValue::Str("x\"y".into()));
        s.push(' ');
        push_json_value(&mut s, &FieldValue::Bool(true));
        assert_eq!(s, "1.5 null \"x\\\"y\" true");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration_ns(12), "12ns");
        assert_eq!(fmt_duration_ns(1_500), "1.5us");
        assert_eq!(fmt_duration_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_duration_ns(3_200_000_000), "3.20s");
    }
}
