//! Request-scoped trace context: plain-u64 trace and span identifiers
//! with an explicit cross-thread handoff protocol.
//!
//! A [`SpanContext`] names one span inside one trace. Identifiers are
//! process-local `u64`s allocated from relaxed atomic counters; `0`
//! means "none" in both positions, so the ids thread through channel
//! payloads and flight-recorder slots without `Option` wrappers.
//!
//! Each thread holds a *current* context in a thread-local cell. Spans
//! set it on enter and restore the previous value on drop; plain events
//! stamp whatever is current so they attach to their enclosing span.
//! Causality crosses a thread boundary only when the sending side
//! captures [`current`] into a message and the receiving side wraps its
//! work in [`attach`]:
//!
//! ```
//! let ctx = t2vec_obs::context::current(); // producer thread
//! // ... send `ctx` across the channel with the request ...
//! let _g = t2vec_obs::context::attach(ctx); // consumer thread
//! // spans opened here parent under the producer's span
//! ```
//!
//! [`detach`] clears the current context for work that must *not*
//! inherit the ambient span (a batch worker's own bookkeeping between
//! per-request sections). Both guards restore the previous context on
//! drop and are `!Send`, so a context can never leak past the scope
//! that installed it.
//!
//! Identifier allocation order depends on thread scheduling, so ids are
//! observability data only: they flow into the event stream and never
//! into computation (crate-level determinism invariant).

use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

/// Identifies one span within one trace. `trace_id == 0` means "no
/// context"; a live context always has both ids nonzero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanContext {
    /// Shared by every span belonging to one logical request.
    pub trace_id: u64,
    /// Unique per span within the process.
    pub span_id: u64,
}

impl SpanContext {
    /// The empty context (no trace, no span).
    pub const NONE: SpanContext = SpanContext {
        trace_id: 0,
        span_id: 0,
    };

    /// Whether this names a real span.
    pub fn is_some(self) -> bool {
        self.trace_id != 0
    }
}

// Ids start at 1 so 0 stays reserved for "none".
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Allocate a fresh trace id (nonzero, process-unique).
pub fn next_trace_id() -> u64 {
    NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed)
}

/// Allocate a fresh span id (nonzero, process-unique).
pub fn next_span_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    static CURRENT: Cell<SpanContext> = const { Cell::new(SpanContext::NONE) };
}

/// The current thread's active span context ([`SpanContext::NONE`] when
/// no span is open and nothing was attached).
pub fn current() -> SpanContext {
    CURRENT.with(|c| c.get())
}

pub(crate) fn set_current(ctx: SpanContext) {
    CURRENT.with(|c| c.set(ctx));
}

/// Restore `prev` only if the current context is still `own` — the
/// defensive rule that makes out-of-LIFO guard drops (a batch worker
/// dropping its member spans after the engine ran) leave a context
/// installed by someone else untouched.
pub(crate) fn restore_current(own: SpanContext, prev: SpanContext) {
    CURRENT.with(|c| {
        if c.get() == own {
            c.set(prev);
        }
    });
}

/// RAII guard from [`attach`]/[`detach`]: restores the previous context
/// on drop. `!Send` — contexts are installed and removed on one thread.
pub struct ContextGuard {
    prev: SpanContext,
    own: SpanContext,
    _not_send: PhantomData<*const ()>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        restore_current(self.own, self.prev);
    }
}

/// Install `ctx` as the current context until the guard drops. Used on
/// the receiving side of a thread hop: spans opened while the guard is
/// live parent under the captured remote span.
pub fn attach(ctx: SpanContext) -> ContextGuard {
    let prev = current();
    set_current(ctx);
    ContextGuard {
        prev,
        own: ctx,
        _not_send: PhantomData,
    }
}

/// Clear the current context until the guard drops, so spans opened in
/// between become roots instead of parenting under the ambient span.
pub fn detach() -> ContextGuard {
    attach(SpanContext::NONE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_nonzero_and_unique() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert!(a != 0 && b != 0 && a != b);
        let s1 = next_span_id();
        let s2 = next_span_id();
        assert!(s1 != 0 && s2 != 0 && s1 != s2);
    }

    #[test]
    fn attach_restores_previous_on_drop() {
        let outer = SpanContext {
            trace_id: next_trace_id(),
            span_id: next_span_id(),
        };
        let inner = SpanContext {
            trace_id: next_trace_id(),
            span_id: next_span_id(),
        };
        let _o = attach(outer);
        assert_eq!(current(), outer);
        {
            let _i = attach(inner);
            assert_eq!(current(), inner);
        }
        assert_eq!(current(), outer);
        {
            let _d = detach();
            assert_eq!(current(), SpanContext::NONE);
        }
        assert_eq!(current(), outer);
    }

    #[test]
    fn out_of_order_drop_is_defensive() {
        let a = SpanContext {
            trace_id: next_trace_id(),
            span_id: next_span_id(),
        };
        let b = SpanContext {
            trace_id: next_trace_id(),
            span_id: next_span_id(),
        };
        let base = current();
        let ga = attach(a);
        let gb = attach(b);
        // Drop `a`'s guard first: current is `b`, not `a`, so nothing
        // changes; dropping `b`'s guard then restores `a` (its prev).
        drop(ga);
        assert_eq!(current(), b);
        drop(gb);
        assert_eq!(current(), a);
        // Clean up the dangling `a` (its guard already ran).
        set_current(base);
    }

    #[test]
    fn context_crosses_threads_by_value() {
        let ctx = SpanContext {
            trace_id: next_trace_id(),
            span_id: next_span_id(),
        };
        let seen = std::thread::spawn(move || {
            assert_eq!(current(), SpanContext::NONE);
            let _g = attach(ctx);
            current()
        })
        .join()
        .unwrap();
        assert_eq!(seen, ctx);
        assert_eq!(current(), SpanContext::NONE);
    }
}
