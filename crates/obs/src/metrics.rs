//! Process-global metrics registry: counters, gauges and log-scale
//! histograms.
//!
//! Handles are `&'static` (leaked once per name) so hot paths pay one
//! atomic op per update with no locking; the registry mutex is only
//! touched on first lookup and on [`snapshot`]/[`emit`]. The
//! `counter!`/`gauge!`/`histogram!` macros add a per-call-site
//! `OnceLock` cache on top so even the `BTreeMap` lookup happens once.
//!
//! Metric *values* must be deterministic data (MACs, tokens, bytes,
//! candidate counts) or be clearly latency-only (`*_ns` histograms);
//! either way they flow exclusively to sinks, never back into
//! computation — see the crate-level determinism invariant.

use crate::{dispatch, enabled, Event, EventKind, FieldValue, Level};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Number of histogram buckets: bucket 0 holds zeros, bucket `i >= 1`
/// holds values in `[2^(i-1), 2^i)`, up to bucket 64 for values with
/// the top bit set.
pub const HIST_BUCKETS: usize = 65;

/// Monotonically increasing u64.
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    fn new() -> Counter {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Last-write-wins f64 (stored as bits).
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    fn new() -> Gauge {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Lock-free histogram over u64 values with fixed power-of-two buckets.
///
/// Keeps an independent total `count` so tests can verify that the sum
/// of bucket counts matches the number of recorded values even under
/// concurrent hammering.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    fn new() -> Histogram {
        let buckets: Vec<AtomicU64> = (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Bucket index for a value: 0 for 0, else `64 - leading_zeros(v)`
    /// (i.e. one past the position of the highest set bit).
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Inclusive lower bound of bucket `i` (0 for buckets 0 and 1).
    pub fn bucket_lower_bound(i: usize) -> u64 {
        if i <= 1 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a duration in nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Minimum recorded value, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        if self.count() == 0 {
            None
        } else {
            Some(self.min.load(Ordering::Relaxed))
        }
    }

    pub fn max(&self) -> Option<u64> {
        if self.count() == 0 {
            None
        } else {
            Some(self.max.load(Ordering::Relaxed))
        }
    }

    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Compact `index:count` rendering of the non-empty buckets, e.g.
    /// `"0:2,11:17,12:3"`. Bucket `i` covers `[2^(i-1), 2^i)`.
    pub fn nonzero_buckets(&self) -> String {
        let mut out = String::new();
        for (i, c) in self.bucket_counts().into_iter().enumerate() {
            if c > 0 {
                if !out.is_empty() {
                    out.push(',');
                }
                out.push_str(&format!("{i}:{c}"));
            }
        }
        out
    }
}

enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

static REGISTRY: Mutex<BTreeMap<&'static str, Metric>> = Mutex::new(BTreeMap::new());

/// Fetch-or-register the counter named `name`.
///
/// Panics if `name` is already registered as a different metric kind —
/// that is a programming error worth failing loudly on.
pub fn counter(name: &'static str) -> &'static Counter {
    let mut reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    match reg
        .entry(name)
        .or_insert_with(|| Metric::Counter(Box::leak(Box::new(Counter::new()))))
    {
        Metric::Counter(c) => c,
        _ => panic!("metric {name:?} already registered with a different kind"),
    }
}

/// Fetch-or-register the gauge named `name`.
pub fn gauge(name: &'static str) -> &'static Gauge {
    let mut reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    match reg
        .entry(name)
        .or_insert_with(|| Metric::Gauge(Box::leak(Box::new(Gauge::new()))))
    {
        Metric::Gauge(g) => g,
        _ => panic!("metric {name:?} already registered with a different kind"),
    }
}

/// Fetch-or-register the histogram named `name`.
pub fn histogram(name: &'static str) -> &'static Histogram {
    let mut reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    match reg
        .entry(name)
        .or_insert_with(|| Metric::Histogram(Box::leak(Box::new(Histogram::new()))))
    {
        Metric::Histogram(h) => h,
        _ => panic!("metric {name:?} already registered with a different kind"),
    }
}

/// One registry entry's current state.
#[derive(Debug, Clone)]
pub struct Snapshot {
    pub name: &'static str,
    /// `"counter"`, `"gauge"` or `"histogram"`.
    pub kind: &'static str,
    pub fields: Vec<(&'static str, FieldValue)>,
}

/// Read every registered metric, sorted by name (BTreeMap order).
pub fn snapshot() -> Vec<Snapshot> {
    let reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    reg.iter()
        .map(|(name, metric)| match metric {
            Metric::Counter(c) => Snapshot {
                name,
                kind: "counter",
                fields: vec![("value", FieldValue::U64(c.get()))],
            },
            Metric::Gauge(g) => Snapshot {
                name,
                kind: "gauge",
                fields: vec![("value", FieldValue::F64(g.get()))],
            },
            Metric::Histogram(h) => {
                let mut fields = vec![
                    ("count", FieldValue::U64(h.count())),
                    ("sum", FieldValue::U64(h.sum())),
                ];
                if let Some(min) = h.min() {
                    fields.push(("min", FieldValue::U64(min)));
                }
                if let Some(max) = h.max() {
                    fields.push(("max", FieldValue::U64(max)));
                }
                fields.push(("buckets", FieldValue::Str(h.nonzero_buckets())));
                Snapshot {
                    name,
                    kind: "histogram",
                    fields,
                }
            }
        })
        .collect()
}

/// Emit the whole registry as [`EventKind::Metric`] events at `Debug`
/// under target `"metrics"`. Call at the end of a run (the CLI and the
/// experiment binaries do) so JSONL sinks capture final totals.
pub fn emit() {
    if !enabled("metrics", Level::Debug) {
        return;
    }
    let ts_ns = crate::now_ns();
    for snap in snapshot() {
        let mut fields = vec![("metric_kind", FieldValue::Str(snap.kind.to_string()))];
        fields.extend(snap.fields);
        dispatch(Event {
            kind: EventKind::Metric,
            level: Level::Debug,
            target: "metrics",
            message: snap.name.to_string(),
            fields,
            elapsed_ns: None,
            depth: 0,
            ts_ns,
            // Registry snapshots are process-global, not request-scoped.
            trace_id: 0,
            span_id: 0,
            parent_span: 0,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = counter("test.metrics.counter");
        let before = c.get();
        c.add(5);
        c.incr();
        assert_eq!(c.get(), before + 6);
        // Same name returns the same handle.
        assert_eq!(counter("test.metrics.counter").get(), before + 6);

        let g = gauge("test.metrics.gauge");
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
    }

    #[test]
    fn histogram_bucketing() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_lower_bound(0), 0);
        assert_eq!(Histogram::bucket_lower_bound(2), 2);
        assert_eq!(Histogram::bucket_lower_bound(11), 1024);

        let h = histogram("test.metrics.hist");
        for v in [0u64, 1, 3, 1024, 1500] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 2528);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1500));
        let buckets = h.bucket_counts();
        assert_eq!(buckets.iter().sum::<u64>(), h.count());
        assert_eq!(buckets[0], 1); // 0
        assert_eq!(buckets[1], 1); // 1
        assert_eq!(buckets[2], 1); // 3
        assert_eq!(buckets[11], 2); // 1024, 1500
        assert_eq!(h.nonzero_buckets(), "0:1,1:1,2:1,11:2");
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        counter("test.metrics.kind_clash");
        gauge("test.metrics.kind_clash");
    }

    #[test]
    fn snapshot_is_sorted_and_typed() {
        counter("test.snap.a").add(1);
        gauge("test.snap.b").set(1.0);
        let snaps = snapshot();
        let names: Vec<_> = snaps.iter().map(|s| s.name).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        let a = snaps.iter().find(|s| s.name == "test.snap.a").unwrap();
        assert_eq!(a.kind, "counter");
    }
}
