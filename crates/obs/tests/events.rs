//! End-to-end event flow: macros → filter → sinks.
//!
//! These tests mutate the process-global obs configuration, so every
//! test takes `CONFIG_LOCK` first — the default multi-threaded test
//! runner would otherwise interleave `set_sinks` calls.

use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use t2vec_obs::{self as obs, EventKind, FieldValue, Filter, JsonlSink, Level, MemorySink};

static CONFIG_LOCK: Mutex<()> = Mutex::new(());

fn with_memory_sink<R>(spec: &str, f: impl FnOnce(&MemorySink) -> R) -> R {
    let _guard = CONFIG_LOCK.lock().unwrap();
    let sink = Arc::new(MemorySink::new());
    obs::set_filter(Filter::parse(spec));
    obs::set_sinks(vec![sink.clone()]);
    let out = f(&sink);
    obs::set_sinks(Vec::new());
    obs::set_filter(Filter::off());
    out
}

#[test]
fn macros_respect_filter_and_carry_fields() {
    with_memory_sink("info,noisy=error", |sink| {
        obs::info!(target: "app", "hello {}", 42; answer = 42u64, label = "x");
        obs::debug!(target: "app", "filtered out");
        obs::info!(target: "noisy.component", "also filtered");
        obs::error!(target: "noisy.component", "kept");

        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].message, "hello 42");
        assert_eq!(events[0].level, Level::Info);
        assert_eq!(events[0].field("answer"), Some(&FieldValue::U64(42)));
        assert_eq!(
            events[0].field("label"),
            Some(&FieldValue::Str("x".to_string()))
        );
        assert_eq!(events[1].level, Level::Error);
    });
}

#[test]
fn spans_nest_and_time() {
    with_memory_sink("debug", |sink| {
        {
            let _outer = obs::span!(target: "app", "outer"; size = 3usize);
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = obs::span!(target: "app", "inner");
            }
        }
        let events = sink.events();
        let kinds: Vec<_> = events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::SpanEnter, // outer
                EventKind::SpanEnter, // inner
                EventKind::SpanExit,  // inner
                EventKind::SpanExit,  // outer
            ]
        );
        assert_eq!(events[0].depth, 0);
        assert_eq!(events[1].depth, 1);
        let outer_exit = &events[3];
        assert_eq!(outer_exit.message, "outer");
        assert!(outer_exit.elapsed_ns.unwrap() >= 2_000_000);
        assert!(events[2].elapsed_ns.unwrap() <= outer_exit.elapsed_ns.unwrap());
    });
}

#[test]
fn spans_are_inert_when_filtered() {
    with_memory_sink("info", |sink| {
        let g = obs::span!(target: "app", "invisible");
        assert!(!g.is_enabled());
        drop(g);
        assert!(sink.is_empty());
    });
}

#[test]
fn disabled_means_no_dispatch() {
    let _guard = CONFIG_LOCK.lock().unwrap();
    obs::set_sinks(Vec::new());
    obs::set_filter(Filter::at(Level::Trace));
    // No sinks -> fast path off even with a permissive filter.
    assert!(!obs::enabled("app", Level::Error));
    obs::set_filter(Filter::off());
}

#[test]
fn buffered_jsonl_sink_loses_nothing_on_teardown() {
    let _guard = CONFIG_LOCK.lock().unwrap();
    let path = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("obs_buffered.jsonl");
    // A flush policy that never triggers on its own during this test
    // (count threshold far above the volume, interval ~forever), so
    // everything rides on the teardown flush.
    let sink = JsonlSink::with_policy(&path, 1_000_000, u64::MAX).expect("create sink");
    obs::set_filter(Filter::parse("trace"));
    obs::set_sinks(vec![Arc::new(sink)]);
    const N: usize = 1_000;
    for i in 0..N {
        obs::info!(target: "app.buffered", "event {}", i; i = i);
    }
    // Swap the sinks out: `set_sinks` flushes the outgoing sink, then
    // dropping the last Arc flushes again — the same path an orderly
    // process exit takes through `obs::flush()`.
    obs::set_sinks(Vec::new());
    obs::set_filter(Filter::off());
    let text = std::fs::read_to_string(&path).expect("read jsonl");
    assert_eq!(text.lines().count(), N, "a buffered event was lost");
    for line in text.lines() {
        serde_json::from_str::<serde_json::Value>(line)
            .unwrap_or_else(|e| panic!("bad JSONL line {line:?}: {e}"));
    }
}

#[test]
fn panic_hook_dumps_flight_rings() {
    let _guard = CONFIG_LOCK.lock().unwrap();
    let path = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("obs_flight_crash.jsonl");
    let _ = std::fs::remove_file(&path);
    obs::set_filter(Filter::parse("debug"));
    obs::flight::arm(32);
    obs::flight::install_panic_hook(&path);
    // A worker records a few events, then dies. The hook must write the
    // crash file even though no sink was ever installed — the flight
    // recorder is the post-mortem for exactly that situation.
    let result = std::thread::Builder::new()
        .name("doomed".into())
        .spawn(|| {
            for i in 0..10u64 {
                obs::debug!(target: "app.flight", "pre-crash {}", i; i = i);
            }
            panic!("deliberate crash for the flight recorder");
        })
        .unwrap()
        .join();
    assert!(result.is_err(), "worker must panic");
    obs::flight::disarm();
    obs::set_filter(Filter::off());
    let text = std::fs::read_to_string(&path).expect("crash dump written");
    assert!(
        text.lines().any(|l| l.contains("app.flight")),
        "dump must contain the doomed thread's events"
    );
    for line in text.lines() {
        serde_json::from_str::<serde_json::Value>(line)
            .unwrap_or_else(|e| panic!("bad flight line {line:?}: {e}"));
    }
}

#[test]
fn detached_spans_stitch_a_trace_across_threads() {
    with_memory_sink("debug", |sink| {
        // Requester thread opens a request root, captures its context
        // and ships it (by value) to a worker — the admission-batcher
        // choreography.
        let root = obs::span_root!(target: "app", "request");
        let ctx = root.context();
        let worker_ctx = std::thread::spawn(move || {
            let span = obs::Span::enter_detached(ctx, "app", "remote_work", Vec::new());
            // A detached span never claims the worker's ambient
            // context: events on this thread outside it stay untraced.
            assert_eq!(obs::context::current(), obs::SpanContext::NONE);
            span.context()
        })
        .join()
        .unwrap();
        assert_eq!(
            worker_ctx.trace_id, ctx.trace_id,
            "trace must cross the hop"
        );
        drop(root);

        let events = sink.events();
        let enter = |name: &str| {
            events
                .iter()
                .find(|e| e.kind == EventKind::SpanEnter && e.message == name)
                .unwrap_or_else(|| panic!("no enter record for {name}"))
        };
        let req = enter("request");
        let rem = enter("remote_work");
        assert_eq!(req.parent_span, 0, "request is a root");
        assert_eq!(rem.trace_id, req.trace_id);
        assert_eq!(
            rem.parent_span, req.span_id,
            "worker span parents under the request"
        );
        assert!(events.iter().any(|e| e.kind == EventKind::SpanExit
            && e.message == "remote_work"
            && e.elapsed_ns.is_some()));
    });
}

#[test]
fn jsonl_sink_produces_parseable_lines() {
    let _guard = CONFIG_LOCK.lock().unwrap();
    let path = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("obs_events.jsonl");
    let sink = Arc::new(JsonlSink::create(&path).expect("create jsonl sink"));
    obs::set_filter(Filter::parse("trace"));
    obs::set_sinks(vec![sink]);

    obs::info!(target: "app", "msg with \"quotes\" and \\ backslash"; n = 7u64, x = 1.5f64);
    {
        let _g = obs::span!(target: "app", "phase");
    }
    obs::metrics::counter("test.events.jsonl").add(3);
    obs::metrics::emit();
    obs::flush();
    obs::set_sinks(Vec::new());
    obs::set_filter(Filter::off());

    let text = std::fs::read_to_string(&path).expect("read jsonl");
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 4, "expected event + 2 span + metrics lines");
    let mut kinds = Vec::new();
    for line in &lines {
        let v: serde_json::Value =
            serde_json::from_str(line).unwrap_or_else(|e| panic!("bad JSONL line {line:?}: {e}"));
        match v {
            serde_json::Value::Object(pairs) => {
                let kind = pairs
                    .iter()
                    .find(|(k, _)| k == "kind")
                    .map(|(_, v)| format!("{v:?}"));
                kinds.push(kind.unwrap_or_default());
            }
            other => panic!("line is not an object: {other:?}"),
        }
    }
    let joined = kinds.join(" ");
    assert!(joined.contains("span_enter"));
    assert!(joined.contains("span_exit"));
    assert!(joined.contains("metric"));
    assert!(text.contains("test.events.jsonl"));
}
