//! Concurrency proptest: hammering counters and histograms from scoped
//! threads loses no increments, and histogram bucket counts stay
//! consistent with the independent total count (satellite 3 of the
//! observability issue).
//!
//! The metrics are process-global, so each case measures deltas rather
//! than absolute values — proptest reuses the same handles across
//! cases.

use proptest::prelude::*;
use t2vec_obs::metrics::{self, Histogram};

proptest! {
    #[test]
    fn concurrent_updates_lose_nothing(
        threads in 2usize..8,
        per_thread in 1usize..256,
        base in 0u64..100_000,
        stride in 1u64..10_000,
    ) {
        let counter = metrics::counter("test.conc.counter");
        let hist = metrics::histogram("test.conc.hist");

        let count_before = counter.get();
        let hist_count_before = hist.count();
        let hist_sum_before = hist.sum();
        let buckets_before = hist.bucket_counts();

        std::thread::scope(|scope| {
            for t in 0..threads {
                let handle = scope.spawn(move || {
                    for i in 0..per_thread {
                        counter.incr();
                        let v = base + stride * (t * per_thread + i) as u64;
                        hist.record(v);
                    }
                });
                drop(handle); // joined by scope exit
            }
        });

        let n = (threads * per_thread) as u64;
        prop_assert_eq!(counter.get() - count_before, n, "counter lost increments");
        prop_assert_eq!(hist.count() - hist_count_before, n, "histogram lost records");

        // Sum of recorded values is fully determined by the inputs.
        let mut expected_sum = 0u64;
        for k in 0..(threads * per_thread) as u64 {
            expected_sum += base + stride * k;
        }
        prop_assert_eq!(hist.sum() - hist_sum_before, expected_sum);

        // Bucket counts are consistent with the independent total.
        let buckets_after = hist.bucket_counts();
        let bucket_delta: u64 = buckets_after
            .iter()
            .zip(buckets_before.iter())
            .map(|(a, b)| a - b)
            .sum();
        prop_assert_eq!(bucket_delta, n, "bucket counts diverged from total");

        // And every value landed in the bucket its magnitude dictates.
        let max_v = base + stride * (threads * per_thread - 1) as u64;
        let lo = Histogram::bucket_index(base);
        let hi = Histogram::bucket_index(max_v);
        for (i, (a, b)) in buckets_after.iter().zip(buckets_before.iter()).enumerate() {
            if i < lo || i > hi {
                prop_assert_eq!(*a, *b, "value landed outside the expected bucket range");
            }
        }

        // min/max monotonicity under concurrency: this case recorded
        // `base` and `max_v`, so min can only be at or below the former
        // and max at or above the latter.
        prop_assert!(hist.min().unwrap() <= base);
        prop_assert!(hist.max().unwrap() >= max_v);
    }
}
