//! End-to-end test of the `t2vec` command-line tool: generate → stats →
//! train → encode → knn, all through the real binary.

use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_t2vec")
}

fn tmp(name: &str) -> String {
    let mut p = std::env::temp_dir();
    p.push(format!("t2vec-cli-{}-{name}", std::process::id()));
    p.to_string_lossy().into_owned()
}

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(bin())
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn full_cli_pipeline() {
    let data = tmp("trips.csv");
    let model = tmp("model.json");
    let vectors = tmp("vectors.json");

    // generate
    let (ok, stdout, stderr) = run(&[
        "generate",
        "--city",
        "tiny",
        "--trips",
        "60",
        "--min-len",
        "6",
        "--out",
        &data,
        "--seed",
        "3",
    ]);
    assert!(ok, "generate failed: {stderr}");
    assert!(stdout.contains("wrote 60 trips"), "{stdout}");

    // stats
    let (ok, stdout, _) = run(&["stats", "--data", &data]);
    assert!(ok);
    assert!(stdout.contains("#trips: 60"));

    // train
    let (ok, stdout, stderr) = run(&[
        "train", "--data", &data, "--preset", "tiny", "--out", &model, "--seed", "3",
    ]);
    assert!(ok, "train failed: {stderr}");
    assert!(stdout.contains("trained on"), "{stdout}");
    assert!(std::path::Path::new(&model).exists());

    // encode
    let (ok, stdout, stderr) = run(&[
        "encode", "--model", &model, "--data", &data, "--out", &vectors,
    ]);
    assert!(ok, "encode failed: {stderr}");
    assert!(stdout.contains("encoded 60 trajectories"));
    let parsed: Vec<Vec<f32>> =
        serde_json::from_reader(std::fs::File::open(&vectors).unwrap()).unwrap();
    assert_eq!(parsed.len(), 60);

    // knn (db == queries: every query's best hit is itself at distance ~0)
    let (ok, stdout, stderr) = run(&[
        "knn", "--model", &model, "--db", &data, "--query", &data, "--k", "3",
    ]);
    assert!(ok, "knn failed: {stderr}");
    let first_line = stdout.lines().next().unwrap();
    assert!(
        first_line.starts_with("query 0: 0:0.000"),
        "self should rank first: {first_line}"
    );

    // knn with LSH
    let (ok, stdout, _) = run(&[
        "knn", "--model", &model, "--db", &data, "--query", &data, "--k", "3", "--lsh",
    ]);
    assert!(ok);
    assert!(stdout.lines().count() == 60);

    for f in [&data, &model, &vectors] {
        std::fs::remove_file(f).ok();
    }
}

#[test]
fn cli_train_checkpoints_and_resumes() {
    let data = tmp("ckpt-trips.csv");
    let model_a = tmp("ckpt-model-a.json");
    let model_b = tmp("ckpt-model-b.json");
    let dir = tmp("ckpt-dir");
    std::fs::remove_dir_all(&dir).ok();

    let (ok, _, stderr) = run(&[
        "generate",
        "--city",
        "tiny",
        "--trips",
        "60",
        "--min-len",
        "6",
        "--out",
        &data,
        "--seed",
        "5",
    ]);
    assert!(ok, "generate failed: {stderr}");

    // Train with per-epoch checkpointing.
    let (ok, _, stderr) = run(&[
        "train",
        "--data",
        &data,
        "--preset",
        "tiny",
        "--out",
        &model_a,
        "--seed",
        "5",
        "--checkpoint-dir",
        &dir,
        "--keep",
        "2",
    ]);
    assert!(ok, "train failed: {stderr}");
    assert!(stderr.contains("checkpoint:"), "{stderr}");
    assert!(std::path::Path::new(&dir).join("LATEST").exists());

    // Resume the (already finished) run: must report the resume and
    // write a byte-identical model.
    let (ok, _, stderr) = run(&[
        "train",
        "--data",
        &data,
        "--preset",
        "tiny",
        "--out",
        &model_b,
        "--seed",
        "5",
        "--checkpoint-dir",
        &dir,
        "--resume",
    ]);
    assert!(ok, "resume failed: {stderr}");
    assert!(stderr.contains("resumed from"), "{stderr}");
    let a = std::fs::read(&model_a).unwrap();
    let b = std::fs::read(&model_b).unwrap();
    assert_eq!(a, b, "resumed model file must be byte-identical");

    // --resume without a checkpoint directory is an error.
    let (ok, _, stderr) = run(&[
        "train", "--data", &data, "--preset", "tiny", "--out", &model_b, "--resume",
    ]);
    assert!(!ok);
    assert!(
        stderr.contains("--resume needs --checkpoint-dir"),
        "{stderr}"
    );

    std::fs::remove_dir_all(&dir).ok();
    for f in [&data, &model_a, &model_b] {
        std::fs::remove_file(f).ok();
    }
}

#[test]
fn cli_train_metrics_out_writes_parseable_jsonl() {
    let data = tmp("obs-trips.csv");
    let model = tmp("obs-model.json");
    let metrics = tmp("obs-metrics.jsonl");
    let dir = tmp("obs-ckpt-dir");
    std::fs::remove_dir_all(&dir).ok();

    let (ok, _, stderr) = run(&[
        "generate",
        "--city",
        "tiny",
        "--trips",
        "60",
        "--min-len",
        "6",
        "--out",
        &data,
        "--seed",
        "9",
    ]);
    assert!(ok, "generate failed: {stderr}");

    // Train with checkpoints, a metrics file and the heartbeat on.
    let (ok, _, stderr) = run(&[
        "train",
        "--data",
        &data,
        "--preset",
        "tiny",
        "--out",
        &model,
        "--seed",
        "9",
        "--checkpoint-dir",
        &dir,
        "--metrics-out",
        &metrics,
    ]);
    assert!(ok, "train failed: {stderr}");
    // Heartbeat: one line per epoch on stderr, with loss + throughput.
    assert!(
        stderr.contains("cli.train") && stderr.contains("tok/s"),
        "missing training heartbeat: {stderr}"
    );

    // The metrics stream parses line by line and contains the epoch
    // spans, matmul throughput counters and checkpoint I/O events the
    // observability contract promises.
    let jsonl = std::fs::read_to_string(&metrics).expect("metrics file written");
    let mut saw_epoch_span = false;
    let mut saw_matmul_macs = false;
    let mut saw_ckpt_save = false;
    for (i, line) in jsonl.lines().enumerate() {
        let v: serde_json::Value = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("metrics line {} is not JSON: {e}\n{line}", i + 1));
        let field = |key: &str| v.get(key).map(|val| format!("{val:?}")).unwrap_or_default();
        let kind = field("kind");
        let msg = field("msg");
        let target = field("target");
        if kind.contains("span_exit") && msg.contains("epoch") && target.contains("core.trainer") {
            saw_epoch_span = true;
        }
        if kind.contains("metric") && msg.contains("tensor.matmul.macs") {
            saw_matmul_macs = true;
        }
        if target.contains("core.checkpoint") && msg.contains("checkpoint saved") {
            saw_ckpt_save = true;
        }
    }
    assert!(saw_epoch_span, "no trainer epoch span in metrics stream");
    assert!(saw_matmul_macs, "no matmul MAC counter in metrics stream");
    assert!(saw_ckpt_save, "no checkpoint save event in metrics stream");

    // --quiet suppresses the heartbeat but not the result line.
    let (ok, stdout, stderr) = run(&[
        "train", "--data", &data, "--preset", "tiny", "--out", &model, "--seed", "9", "--quiet",
    ]);
    assert!(ok, "quiet train failed: {stderr}");
    assert!(
        !stderr.contains("tok/s"),
        "--quiet must suppress the heartbeat: {stderr}"
    );
    assert!(stdout.contains("trained on"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
    for f in [&data, &model, &metrics] {
        std::fs::remove_file(f).ok();
    }
}

#[test]
fn cli_reports_usage_on_no_args() {
    let (ok, _, stderr) = run(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage:"));
}

#[test]
fn cli_rejects_unknown_command_and_missing_flags() {
    let (ok, _, stderr) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));

    let (ok, _, stderr) = run(&["train", "--data"]);
    assert!(!ok);
    assert!(stderr.contains("--data needs a value"));

    let (ok, _, stderr) = run(&["train"]);
    assert!(!ok);
    assert!(stderr.contains("missing --data"));
}

#[test]
fn cli_reports_file_errors_cleanly() {
    let (ok, _, stderr) = run(&["stats", "--data", "/nonexistent/file.csv"]);
    assert!(!ok);
    assert!(stderr.contains("cannot open"));
}
