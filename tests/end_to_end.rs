//! End-to-end pipeline test spanning every crate: synthesise a city,
//! train t2vec, and verify the trained representation delivers the
//! paper's headline property — robust most-similar search under
//! down-sampling and distortion — better than chance and better than an
//! untrained model.

use t2vec::prelude::*;
use t2vec_core::model::vec_dist;
use t2vec_eval::experiments::{mean_rank_of, most_similar_workload};
use t2vec_eval::method::T2VecMethod;
use t2vec_spatial::point::Point;

struct Fixture {
    data: t2vec_trajgen::dataset::Dataset,
    model: T2Vec,
}

fn fixture() -> &'static Fixture {
    static SHARED: std::sync::OnceLock<Fixture> = std::sync::OnceLock::new();
    SHARED.get_or_init(|| {
        let mut rng = det_rng(77);
        let city = City::tiny(&mut rng);
        let data = DatasetBuilder::new(&city)
            .trips(120)
            .min_len(8)
            .build(&mut rng);
        let config = T2VecConfig::tiny();
        let model = T2Vec::train(&config, &data.train, &mut rng).expect("training failed");
        Fixture { data, model }
    })
}

#[test]
fn representation_dimension_and_determinism() {
    let f = fixture();
    let v1 = f.model.encode(&f.data.test[0].points);
    let v2 = f.model.encode(&f.data.test[0].points);
    assert_eq!(v1.len(), f.model.repr_dim());
    assert_eq!(v1, v2);
}

#[test]
fn downsampled_variant_ranks_near_top() {
    let f = fixture();
    let mut rng = det_rng(78);
    let nq = 10.min(f.data.test.len() / 2);
    let q: Vec<&[Point]> = f.data.test[..nq]
        .iter()
        .map(|t| t.points.as_slice())
        .collect();
    let p: Vec<&[Point]> = f.data.test[nq..]
        .iter()
        .map(|t| t.points.as_slice())
        .collect();
    let workload = most_similar_workload(&q, &p, 0.4, 0.0, &mut rng);
    let db_size = workload.db.len() as f64;
    let mr = mean_rank_of(&T2VecMethod::new(&f.model), &workload);
    // Random guessing would give ~db/2; demand far better.
    assert!(
        mr < db_size / 4.0,
        "trained mean rank {mr} should be far better than random ({})",
        db_size / 2.0
    );
}

#[test]
fn trained_beats_untrained_representation() {
    let f = fixture();
    let mut rng = det_rng(79);
    // An untrained model: same architecture, random parameters, same vocab
    // pipeline (trained 0 epochs via max_iterations = 0 is not allowed by
    // the early-stop bookkeeping, so use 1 iteration).
    let mut config = T2VecConfig::tiny();
    config.max_epochs = 1;
    config.max_iterations = 1;
    config.pretrain_cells = false;
    let untrained =
        T2Vec::train(&config, &f.data.train, &mut rng).expect("one-step training failed");

    let nq = 10.min(f.data.test.len() / 2);
    let q: Vec<&[Point]> = f.data.test[..nq]
        .iter()
        .map(|t| t.points.as_slice())
        .collect();
    let p: Vec<&[Point]> = f.data.test[nq..]
        .iter()
        .map(|t| t.points.as_slice())
        .collect();
    let mut rng_w = det_rng(80);
    let workload = most_similar_workload(&q, &p, 0.4, 0.0, &mut rng_w);
    let mr_trained = mean_rank_of(&T2VecMethod::new(&f.model), &workload);
    let mr_untrained = mean_rank_of(&T2VecMethod::new(&untrained), &workload);
    assert!(
        mr_trained <= mr_untrained,
        "training should not hurt: trained {mr_trained} vs untrained {mr_untrained}"
    );
}

#[test]
fn noise_distortion_changes_representation_little() {
    let f = fixture();
    let mut rng = det_rng(81);
    let trip = &f.data.test[0].points;
    let other = &f.data.test[3].points;
    let v = f.model.encode(trip);
    let v_noisy = f.model.encode(&distort(trip, 0.4, &mut rng));
    let v_other = f.model.encode(other);
    assert!(
        vec_dist(&v, &v_noisy) < vec_dist(&v, &v_other),
        "distorted self should stay closer than a different trip"
    );
}

#[test]
fn batch_encoding_is_consistent_across_thread_paths() {
    let f = fixture();
    let trajs: Vec<Vec<Point>> = f
        .data
        .test
        .iter()
        .take(8)
        .map(|t| t.points.clone())
        .collect();
    let batch = f.model.encode_batch(&trajs);
    assert_eq!(batch.len(), trajs.len());
    for (t, b) in trajs.iter().zip(&batch) {
        let single = f.model.encode(t);
        for (x, y) in single.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-4);
        }
    }
}

#[test]
fn index_search_agrees_with_exhaustive_vector_scan() {
    let f = fixture();
    let db: Vec<Vec<Point>> = f.data.test.iter().map(|t| t.points.clone()).collect();
    let vectors = f.model.encode_batch(&db);
    let mut index = BruteForceIndex::new();
    for v in &vectors {
        index.add(v.clone());
    }
    let q = f.model.encode(&db[2]);
    let top = index.knn(&q, 3);
    assert_eq!(top[0].0, 2);
    assert!(top[0].1 < 1e-5);
    // Manual scan agrees.
    let manual_best = vectors
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| vec_dist(&q, a).partial_cmp(&vec_dist(&q, b)).unwrap())
        .unwrap()
        .0;
    assert_eq!(manual_best, 2);
}

#[test]
fn clustering_groups_variants_of_the_same_trip() {
    let f = fixture();
    let mut rng = det_rng(82);
    let routes = 3;
    let variants = 4;
    let mut trajs = Vec::new();
    let mut truth = Vec::new();
    for (ri, trip) in f.data.test.iter().take(routes).enumerate() {
        for _ in 0..variants {
            trajs.push(downsample(&trip.points, 0.3, &mut rng));
            truth.push(ri);
        }
    }
    let vectors = f.model.encode_batch(&trajs);
    let result = kmeans(&vectors, routes, 50, &mut rng);
    // Require decent purity (strictly better than the 1/3 random
    // baseline).
    let mut hits = 0;
    for c in 0..routes {
        let members: Vec<usize> = (0..truth.len())
            .filter(|&i| result.assignments[i] == c)
            .collect();
        if members.is_empty() {
            continue;
        }
        let mut counts = vec![0usize; routes];
        for &m in &members {
            counts[truth[m]] += 1;
        }
        hits += counts.iter().max().copied().unwrap_or(0);
    }
    let purity = hits as f64 / truth.len() as f64;
    assert!(purity > 0.6, "cluster purity {purity} too low");
}
