//! Kill-and-resume training: a run that checkpoints every epoch, is
//! "crashed" after epoch 2, and resumes from its checkpoint directory
//! must finish with *bitwise identical* loss curves and parameters to a
//! run that was never interrupted — at 1 worker thread and at 4.
//!
//! This is the end-to-end proof of the checkpoint subsystem: the
//! checkpoint captures the complete mutable run state (parameters, Adam
//! moments, RNG position, counters), the deterministic setup is
//! re-derived from the recorded seed, and the epoch driver consumes
//! randomness in a thread-count-independent order.

use std::path::PathBuf;
use t2vec::prelude::*;
use t2vec::tensor::parallel;
use t2vec_trajgen::dataset::Dataset;

fn temp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("t2vec-resume-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    p
}

fn tiny_dataset() -> Dataset {
    let mut rng = det_rng(601);
    let city = City::tiny(&mut rng);
    DatasetBuilder::new(&city)
        .trips(40)
        .min_len(6)
        .build(&mut rng)
}

fn four_epoch_config() -> T2VecConfig {
    let mut config = T2VecConfig::tiny();
    config.max_epochs = 4;
    // High patience: the run must reach all 4 epochs so the crash at
    // epoch 2 actually interrupts something.
    config.patience = 10;
    // Ragged accumulation groups across 4 workers.
    config.grad_accum = 3;
    config
}

fn param_bits(model: &t2vec::nn::Seq2Seq) -> Vec<u32> {
    model
        .params()
        .iter()
        .flat_map(|p| p.value.as_slice().iter().map(|v| v.to_bits()))
        .collect()
}

fn history_bits(trainer: &Trainer) -> Vec<(u32, u32)> {
    trainer
        .history()
        .iter()
        .map(|s| (s.train_loss.to_bits(), s.val_loss.to_bits()))
        .collect()
}

#[test]
fn killed_and_resumed_run_is_bitwise_identical_to_uninterrupted() {
    const SEED: u64 = 602;
    let ds = tiny_dataset();
    let config = four_epoch_config();

    // `set_threads` is process-global, so both thread counts run inside
    // this single test function (as in `data_parallel.rs`).
    for &threads in &[1usize, 4] {
        parallel::set_threads(threads);

        // The uninterrupted reference run.
        let mut straight =
            Trainer::new(&config, &ds.train, &ds.val, SEED).expect("training setup failed");
        while straight.step_epoch().is_some() {}
        assert_eq!(straight.epochs_done(), 4, "expected the full 4 epochs");

        // The victim: checkpoints every epoch, killed after epoch 2.
        let dir = temp_dir(&format!("kill-{threads}t"));
        let store = CheckpointStore::open(&dir, 3).unwrap();
        let mut victim =
            Trainer::new(&config, &ds.train, &ds.val, SEED).expect("training setup failed");
        for _ in 0..2 {
            assert!(victim.step_epoch().is_some());
            store.save(&victim.checkpoint()).expect("checkpoint failed");
        }
        drop(victim); // the crash

        // Resume from the directory. The fresh-start seed argument is
        // deliberately wrong: the setup seed must come from the
        // checkpoint, not the caller.
        let (mut resumed, notes) =
            Trainer::resume_from(&config, &ds.train, &ds.val, 0xdead_beef, &store)
                .expect("resume failed");
        assert_eq!(
            resumed.epochs_done(),
            2,
            "resume must pick up after epoch 2"
        );
        assert!(
            notes.iter().any(|n| n.contains("resumed from")),
            "{notes:?}"
        );
        while resumed.step_epoch().is_some() {
            store
                .save(&resumed.checkpoint())
                .expect("checkpoint failed");
        }

        // Bitwise-identical run: counters, loss curves, parameters.
        assert_eq!(straight.epochs_done(), resumed.epochs_done());
        assert_eq!(straight.iterations(), resumed.iterations());
        assert_eq!(
            history_bits(&straight),
            history_bits(&resumed),
            "loss curves diverged at {threads} thread(s)"
        );
        assert_eq!(
            param_bits(straight.model()),
            param_bits(resumed.model()),
            "final parameters diverged at {threads} thread(s)"
        );

        // And identical behaviour through the public encoder.
        let (model_a, report_a) = straight.finish();
        let (model_b, report_b) = resumed.finish();
        assert_eq!(
            report_a.best_val_loss.to_bits(),
            report_b.best_val_loss.to_bits()
        );
        for trip in ds.test.iter().take(5) {
            assert_eq!(model_a.encode(&trip.points), model_b.encode(&trip.points));
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
