//! End-to-end training-path parity gate.
//!
//! The fused, tape-free backward (`T2VEC_TRAIN_PATH=fused`, the
//! default) must be indistinguishable from the autograd-tape reference
//! — not just per-batch (the bitwise `GradSet` tests in `t2vec-nn`) but
//! across the whole seeded pipeline: pretraining, every epoch, early
//! stopping, and the EXP1/EXP2/EXP3 reports. This runs the paper
//! harness once per path and requires byte-identical canonical JSON.
//! Combined with `tests/paper_experiments.rs` (which gates the default
//! path against the checked-in `GOLDEN_EXP.json`), both paths are
//! pinned to the same golden bytes.

use t2vec_eval::harness::{self, HarnessConfig};
use t2vec_nn::train::{set_train_path, TrainPath};
use t2vec_tensor::parallel;

#[test]
fn harness_report_is_byte_identical_under_tape_and_fused_training() {
    t2vec::obs::init_from_env("off");
    let cfg = HarnessConfig::tiny();
    parallel::set_threads(4);

    set_train_path(TrainPath::Tape);
    let tape_json = harness::run(&cfg).to_canonical_json();

    set_train_path(TrainPath::Fused);
    let fused_json = harness::run(&cfg).to_canonical_json();

    assert_eq!(
        tape_json, fused_json,
        "tape and fused training paths produced different reports"
    );
}
