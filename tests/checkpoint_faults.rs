//! Fault injection against the checkpoint store: every corruption and
//! crash scenario must degrade to "recover the newest valid checkpoint,
//! with a warning" — never a panic, never silently loading bad data.

use std::fs;
use std::path::PathBuf;
use std::sync::OnceLock;
use t2vec::prelude::*;
use t2vec_core::checkpoint::fault::FaultPlan;
use t2vec_core::checkpoint::LATEST_FILE;
use t2vec_trajgen::dataset::Dataset;

fn temp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("t2vec-faults-{}-{name}", std::process::id()));
    fs::remove_dir_all(&p).ok();
    p
}

/// One short real training run, shared by every test: its per-epoch
/// checkpoints are cloned into a fresh store per scenario.
fn fixtures() -> &'static (Dataset, T2VecConfig, Vec<Checkpoint>) {
    static SHARED: OnceLock<(Dataset, T2VecConfig, Vec<Checkpoint>)> = OnceLock::new();
    SHARED.get_or_init(|| {
        let mut rng = det_rng(620);
        let city = City::tiny(&mut rng);
        let ds = DatasetBuilder::new(&city)
            .trips(40)
            .min_len(6)
            .build(&mut rng);
        let mut config = T2VecConfig::tiny();
        config.max_epochs = 3;
        config.patience = 10;
        let mut trainer = Trainer::new(&config, &ds.train, &ds.val, 621).unwrap();
        let mut checkpoints = Vec::new();
        while trainer.step_epoch().is_some() {
            checkpoints.push(trainer.checkpoint());
        }
        assert_eq!(checkpoints.len(), 3);
        (ds, config, checkpoints)
    })
}

/// A store containing all three epoch checkpoints, saved normally.
fn populated_store(name: &str) -> (CheckpointStore, PathBuf) {
    let dir = temp_dir(name);
    let store = CheckpointStore::open(&dir, 5).unwrap();
    for ckpt in &fixtures().2 {
        store.save(ckpt).unwrap();
    }
    (store, dir)
}

fn newest_path(store: &CheckpointStore) -> PathBuf {
    store.checkpoint_files().last().unwrap().0.clone()
}

#[test]
fn truncated_newest_file_falls_back_to_previous() {
    let (store, dir) = populated_store("truncated");
    let newest = newest_path(&store);
    let bytes = fs::read(&newest).unwrap();
    fs::write(&newest, &bytes[..bytes.len() / 3]).unwrap();

    let out = store.load_latest();
    let (path, ckpt) = out.checkpoint.expect("must fall back, not give up");
    assert_eq!(ckpt.epochs_done, 2, "newest valid is the epoch-2 file");
    assert_ne!(path, newest);
    assert!(
        out.warnings.iter().any(|w| w.contains("corrupt")),
        "{:?}",
        out.warnings
    );
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn flipped_checksum_byte_falls_back_to_previous() {
    let (store, dir) = populated_store("bitflip");
    let newest = newest_path(&store);
    let mut bytes = fs::read(&newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    fs::write(&newest, &bytes).unwrap();

    let out = store.load_latest();
    let (_, ckpt) = out.checkpoint.expect("must fall back, not give up");
    assert_eq!(ckpt.epochs_done, 2);
    assert!(
        out.warnings.iter().any(|w| w.contains("corrupt")),
        "{:?}",
        out.warnings
    );
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_latest_pointer_still_recovers_newest() {
    let (store, dir) = populated_store("no-latest");
    fs::remove_file(dir.join(LATEST_FILE)).unwrap();

    let out = store.load_latest();
    let (_, ckpt) = out.checkpoint.expect("scan must not need the pointer");
    assert_eq!(ckpt.epochs_done, 3);
    assert!(
        out.warnings.iter().any(|w| w.contains("LATEST")),
        "{:?}",
        out.warnings
    );
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn failed_write_leaves_previous_checkpoints_intact() {
    let (store, dir) = populated_store("enospc");
    let (_, _, checkpoints) = fixtures();
    // Re-save the newest checkpoint, dying 40 bytes into the payload.
    let mut plan = FaultPlan {
        write_fail_at: Some(40),
        ..FaultPlan::none()
    };
    let err = store.save_with(&checkpoints[2], &mut plan).unwrap_err();
    assert!(err.to_string().contains("injected"), "{err}");

    let out = store.load_latest();
    assert_eq!(out.checkpoint.unwrap().1.epochs_done, 3);
    assert!(out.warnings.is_empty(), "{:?}", out.warnings);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_before_rename_is_invisible_to_load() {
    let dir = temp_dir("pre-rename");
    let store = CheckpointStore::open(&dir, 5).unwrap();
    let (_, _, checkpoints) = fixtures();
    store.save(&checkpoints[0]).unwrap();
    let mut plan = FaultPlan {
        crash_before_rename: true,
        ..FaultPlan::none()
    };
    store.save_with(&checkpoints[1], &mut plan).unwrap_err();

    // Only the temp file exists for epoch 2; the scan ignores it.
    let out = store.load_latest();
    assert_eq!(out.checkpoint.unwrap().1.epochs_done, 1);
    assert!(out.warnings.is_empty(), "{:?}", out.warnings);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_rename_recovers_newest_despite_stale_pointer() {
    let dir = temp_dir("torn");
    let store = CheckpointStore::open(&dir, 5).unwrap();
    let (_, _, checkpoints) = fixtures();
    store.save(&checkpoints[0]).unwrap();
    // Crash between the checkpoint rename and the LATEST update: the
    // epoch-2 file is durable but the pointer still names epoch 1.
    let mut plan = FaultPlan {
        crash_before_latest: true,
        ..FaultPlan::none()
    };
    store.save_with(&checkpoints[1], &mut plan).unwrap_err();
    let pointer = fs::read_to_string(dir.join(LATEST_FILE)).unwrap();
    assert_eq!(pointer.trim(), CheckpointStore::file_name(1));

    let out = store.load_latest();
    let (_, ckpt) = out
        .checkpoint
        .expect("newest file must win over the pointer");
    assert_eq!(ckpt.epochs_done, 2);
    assert!(
        out.warnings.iter().any(|w| w.contains("LATEST")),
        "{:?}",
        out.warnings
    );
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn failed_pointer_write_keeps_old_pointer_and_new_checkpoint() {
    let dir = temp_dir("pointer-fail");
    let store = CheckpointStore::open(&dir, 5).unwrap();
    let (_, _, checkpoints) = fixtures();
    store.save(&checkpoints[0]).unwrap();
    let mut plan = FaultPlan {
        latest_write_fail_at: Some(2),
        ..FaultPlan::none()
    };
    store.save_with(&checkpoints[1], &mut plan).unwrap_err();

    // Pointer still valid (the old one), checkpoint data newer; the
    // scan resolves the disagreement in favour of the data.
    let pointer = fs::read_to_string(dir.join(LATEST_FILE)).unwrap();
    assert_eq!(pointer.trim(), CheckpointStore::file_name(1));
    let out = store.load_latest();
    assert_eq!(out.checkpoint.unwrap().1.epochs_done, 2);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn all_checkpoints_corrupt_resumes_fresh_with_warnings() {
    let (store, dir) = populated_store("all-corrupt");
    for (path, _) in store.checkpoint_files() {
        fs::write(&path, b"garbage\n").unwrap();
    }
    let out = store.load_latest();
    assert!(out.checkpoint.is_none());
    assert_eq!(out.warnings.len(), 3, "{:?}", out.warnings);

    // The trainer-level API degrades to a fresh start, not a panic.
    let (ds, config, _) = fixtures();
    let (trainer, notes) = Trainer::resume_from(config, &ds.train, &ds.val, 622, &store).unwrap();
    assert_eq!(trainer.epochs_done(), 0);
    assert!(
        notes.iter().any(|n| n.contains("starting fresh")),
        "{notes:?}"
    );
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn valid_checkpoint_with_wrong_config_is_an_error_not_a_fallback() {
    let (store, dir) = populated_store("wrong-config");
    let (ds, config, _) = fixtures();
    let mut other = config.clone();
    other.learning_rate *= 2.0;
    let err = Trainer::resume_from(&other, &ds.train, &ds.val, 623, &store).unwrap_err();
    assert!(
        matches!(err, t2vec_core::T2VecError::Checkpoint(_)),
        "{err}"
    );
    fs::remove_dir_all(&dir).ok();
}
