//! Smoke tests of every experiment runner at tiny scale — each table
//! and figure of the paper must be regenerable without panicking and
//! must produce structurally valid output.

use t2vec_core::T2VecConfig;
use t2vec_eval::experiments::{self, Bench, CityKind, Scale};

fn bench() -> &'static Bench {
    static SHARED: std::sync::OnceLock<Bench> = std::sync::OnceLock::new();
    SHARED.get_or_init(|| Bench::prepare(CityKind::Tiny, Scale::tiny(), &T2VecConfig::tiny(), 5))
}

#[test]
fn table3_runner() {
    let (sizes, rows) = experiments::exp1_db_size(bench());
    assert_eq!(rows.len(), 6);
    assert!(sizes.iter().all(|&s| s > 0));
    let names: Vec<&str> = rows.iter().map(|r| r.method.as_str()).collect();
    assert_eq!(names, ["EDR", "LCSS", "CMS", "vRNN", "EDwP", "t2vec"]);
}

#[test]
fn table4_and_5_runners() {
    let rates = [0.3, 0.6];
    for rows in [
        experiments::exp2_dropping(bench(), &rates),
        experiments::exp3_distortion(bench(), &rates),
    ] {
        assert_eq!(rows.len(), 6);
        for row in rows {
            assert_eq!(row.values.len(), 2);
            assert!(row.values.iter().all(|v| *v >= 1.0));
        }
    }
}

#[test]
fn table6_runner() {
    for dropping in [true, false] {
        let rows = experiments::cross_similarity(bench(), &[0.2], 5, dropping);
        assert_eq!(rows.len(), 3);
        let names: Vec<&str> = rows.iter().map(|r| r.method.as_str()).collect();
        assert_eq!(names, ["t2vec", "EDwP", "EDR"]);
    }
}

#[test]
fn fig5_runner() {
    let rows = experiments::knn_precision(bench(), 3, &[0.0, 0.4], false, 4, 15);
    assert_eq!(rows.len(), 6);
    for row in rows {
        assert!(
            row.values.iter().all(|v| (0.0..=1.0).contains(v)),
            "{row:?}"
        );
    }
}

#[test]
fn fig6_runner() {
    let points = experiments::scalability(bench(), &[15, 30], 5, 4);
    assert_eq!(points.len(), 6);
    for p in points {
        assert!(p.query_micros > 0.0);
        assert!(p.build_micros >= 0.0);
    }
}

#[test]
fn table7_runner_loss_ablation() {
    let mut config = T2VecConfig::tiny();
    config.max_epochs = 1;
    config.skipgram.epochs = 1;
    let scale = Scale::tiny();
    let rows = experiments::loss_ablation(CityKind::Tiny, &scale, &config, &[0.5]);
    assert_eq!(rows.len(), 4);
    let labels: Vec<&str> = rows.iter().map(|r| r.loss.as_str()).collect();
    assert_eq!(labels, ["L1", "L2", "L3", "L3+CL"]);
    for row in &rows {
        assert!(row.train_seconds > 0.0);
        assert_eq!(row.mean_ranks.len(), 1);
        assert!(row.mean_ranks[0] >= 1.0);
    }
}

#[test]
fn table8_and_9_and_fig7_runners() {
    let mut config = T2VecConfig::tiny();
    config.max_epochs = 1;
    config.skipgram.epochs = 1;
    let scale = Scale::tiny();

    let rows = experiments::cell_size_sweep(CityKind::Tiny, &scale, &config, &[150.0, 250.0]);
    assert_eq!(rows.len(), 2);
    assert!(
        rows[0].vocab_size > rows[1].vocab_size,
        "finer grid => more cells"
    );

    let rows = experiments::hidden_size_sweep(CityKind::Tiny, &scale, &config, &[8, 16]);
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0].value, 8.0);

    let rows = experiments::training_size_sweep(CityKind::Tiny, &scale, &config, &[0.5, 1.0]);
    assert_eq!(rows.len(), 2);
    assert!(rows.iter().all(|r| r.mr_r1_b >= 1.0));
}
