//! Cross-crate behavioural tests of the classical baselines on
//! *generated city data* (the unit tests inside `t2vec-distance` use
//! synthetic walks; here the inputs come through the full trajgen +
//! spatial pipeline).

use t2vec::prelude::*;
use t2vec_distance::dtw::Dtw;
use t2vec_distance::erp::Erp;
use t2vec_spatial::point::Point;

fn city_trips(n: usize, seed: u64) -> Vec<Vec<Point>> {
    let mut rng = det_rng(seed);
    let city = City::tiny(&mut rng);
    let ds = DatasetBuilder::new(&city)
        .trips(n)
        .min_len(8)
        .build(&mut rng);
    ds.all().map(|t| t.points.clone()).collect()
}

#[test]
fn edwp_is_more_downsampling_robust_than_edr() {
    // The motivating comparison from the paper's related work: EDwP's
    // interpolation absorbs rate changes that EDR cannot.
    let trips = city_trips(30, 1);
    let mut rng = det_rng(2);
    let edr = Edr::new(50.0);
    let edwp = Edwp::new();
    let mut edr_wins = 0;
    let mut edwp_wins = 0;
    for trip in trips.iter().take(20) {
        let down = downsample(trip, 0.5, &mut rng);
        // Normalised self-distance after degradation, relative to the
        // distance to a different trip.
        let other = &trips[(trips.len() / 2) % trips.len()];
        let edr_ratio = edr.dist(trip, &down) / edr.dist(trip, other).max(1e-9);
        let edwp_ratio = edwp.dist(trip, &down) / edwp.dist(trip, other).max(1e-9);
        if edr_ratio < edwp_ratio {
            edr_wins += 1;
        } else {
            edwp_wins += 1;
        }
    }
    assert!(
        edwp_wins > edr_wins,
        "EDwP should be the more rate-robust measure ({edwp_wins} vs {edr_wins})"
    );
}

#[test]
fn all_measures_identify_self_as_most_similar_on_clean_data() {
    let trips = city_trips(25, 3);
    let measures: Vec<Box<dyn TrajDistance>> = vec![
        Box::new(Dtw::new()),
        Box::new(Erp::new()),
        Box::new(Edr::new(50.0)),
        Box::new(Lcss::new(50.0)),
        Box::new(DiscreteFrechet::new()),
        Box::new(Edwp::new()),
        Box::new(Cms::new(100.0)),
    ];
    for m in &measures {
        for probe in trips.iter().take(5) {
            let self_d = m.dist(probe, probe);
            let min_other = trips
                .iter()
                .filter(|t| *t != probe)
                .map(|t| m.dist(probe, t))
                .fold(f64::INFINITY, f64::min);
            assert!(
                self_d <= min_other,
                "{}: self distance {self_d} not minimal (min other {min_other})",
                m.name()
            );
        }
    }
}

#[test]
fn cms_is_order_blind_but_sequence_methods_are_not() {
    let trips = city_trips(10, 4);
    let trip = &trips[0];
    let mut rev = trip.clone();
    rev.reverse();
    assert_eq!(
        Cms::new(100.0).dist(trip, &rev),
        0.0,
        "CMS cannot see direction"
    );
    // DTW distance of a route to its reverse is positive for non-trivial
    // routes.
    assert!(Dtw::new().dist(trip, &rev) > 0.0);
    assert!(DiscreteFrechet::new().dist(trip, &rev) > 0.0);
}

#[test]
fn distance_measure_epsilon_tracks_grid_resolution() {
    // EDR at a fine threshold is stricter than at a coarse one on real
    // city trajectories (monotonicity survives the full pipeline).
    let trips = city_trips(12, 5);
    let a = &trips[0];
    let b = &trips[1];
    let fine = Edr::new(10.0).dist(a, b);
    let coarse = Edr::new(200.0).dist(a, b);
    assert!(coarse <= fine);
}

#[test]
fn geo_projection_pipeline_roundtrip() {
    // Import/export path: project geographic coordinates into the local
    // frame, run a measure, and confirm unprojection preserves data.
    use t2vec_spatial::point::GeoPoint;
    let anchor = GeoPoint::new(-8.61, 41.15);
    let geo: Vec<GeoPoint> = (0..20)
        .map(|i| GeoPoint::new(-8.61 + f64::from(i) * 1e-4, 41.15 + f64::from(i) * 5e-5))
        .collect();
    let local: Vec<Point> = geo.iter().map(|g| g.project(&anchor)).collect();
    assert_eq!(Dtw::new().dist(&local, &local), 0.0);
    let back: Vec<GeoPoint> = local
        .iter()
        .map(|p| GeoPoint::unproject(p, &anchor))
        .collect();
    for (g, b) in geo.iter().zip(&back) {
        assert!((g.lon - b.lon).abs() < 1e-9);
        assert!((g.lat - b.lat).abs() < 1e-9);
    }
}
