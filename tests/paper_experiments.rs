//! The paper-experiment regression gate (see `crates/eval/src/harness.rs`
//! and EXPERIMENTS.md).
//!
//! Two tiers, both over the seeded end-to-end pipeline (synthetic city →
//! vocabulary → epoch-stepped training → EXP1/EXP2/EXP3 → LSH recall):
//!
//! * **bitwise** — the canonical JSON report is identical at 1 and 4
//!   worker threads and matches the checked-in `GOLDEN_EXP.json` byte
//!   for byte. Any change to the loss, kernels, RNG streams, vocabulary
//!   or index surfaces as a diff here.
//! * **trend** — the paper's §V qualitative findings hold on the report
//!   (monotonic mean-rank degradation under dropping, t2vec's
//!   degradation slope beating a point-matching baseline, LSH recall
//!   above its seeded floor), so an *intentional* golden regeneration
//!   still cannot silently invert the science.
//!
//! Regenerate the golden file after a deliberate numeric change with:
//!
//! ```sh
//! T2VEC_UPDATE_GOLDEN=1 cargo test --release --test paper_experiments
//! ```
//!
//! The produced reports are always written to
//! `target/paper_experiments/report-{1,4}t.json` so CI can upload them
//! for diffing against the golden file on failure.

// The golden-regeneration notice prints directly: it must reach the
// developer regardless of any T2VEC_LOG filtering.
#![allow(clippy::disallowed_macros)]

use std::fs;
use std::path::{Path, PathBuf};
use t2vec_eval::harness::{self, ExpReport, HarnessConfig};
use t2vec_tensor::parallel;

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

fn artifact_dir() -> PathBuf {
    repo_root().join("target").join("paper_experiments")
}

#[test]
fn paper_experiments_match_golden_and_trends() {
    // Honour T2VEC_LOG / T2VEC_METRICS_OUT so CI can run this gate with
    // full observability on (the golden match below then doubles as the
    // determinism-invariance check); silent when neither is set.
    t2vec::obs::init_from_env("off");
    let cfg = HarnessConfig::tiny();

    parallel::set_threads(1);
    let report_1t = harness::run(&cfg);
    let json_1t = report_1t.to_canonical_json();

    parallel::set_threads(4);
    let report_4t = harness::run(&cfg);
    let json_4t = report_4t.to_canonical_json();
    parallel::set_threads(1);

    // Always record what this run produced, so a failing CI job can
    // upload the reports for diffing against the golden file.
    let dir = artifact_dir();
    fs::create_dir_all(&dir).expect("create artifact dir");
    fs::write(dir.join("report-1t.json"), format!("{json_1t}\n")).expect("write 1t report");
    fs::write(dir.join("report-4t.json"), format!("{json_4t}\n")).expect("write 4t report");

    // Tier 1a: thread-count invariance, byte for byte.
    assert_eq!(
        json_1t, json_4t,
        "report is not bitwise invariant across T2VEC_THREADS=1 and 4 \
         (see target/paper_experiments/report-*.json)"
    );

    // Tier 1b: bitwise match against the checked-in golden file.
    let golden_path = repo_root().join("GOLDEN_EXP.json");
    let produced = format!("{json_1t}\n");
    if std::env::var_os("T2VEC_UPDATE_GOLDEN").is_some() {
        fs::write(&golden_path, &produced).expect("rewrite GOLDEN_EXP.json");
        eprintln!("[paper_experiments] regenerated {}", golden_path.display());
    }
    let golden = fs::read_to_string(&golden_path).expect(
        "GOLDEN_EXP.json missing — regenerate with \
         `T2VEC_UPDATE_GOLDEN=1 cargo test --release --test paper_experiments`",
    );
    assert_eq!(
        produced, golden,
        "report differs from GOLDEN_EXP.json — if the numeric change is \
         intentional, regenerate per EXPERIMENTS.md and re-review the trends; \
         the produced report is at target/paper_experiments/report-1t.json"
    );

    // The golden file must itself be a parseable report (guards against
    // hand edits) that reproduces the canonical bytes.
    let parsed = ExpReport::from_json(golden.trim_end()).expect("golden file must parse");
    assert_eq!(format!("{}\n", parsed.to_canonical_json()), golden);

    // Tier 2: the paper's qualitative findings hold.
    harness::assert_trends(&report_1t);

    // Final metric totals into the (possibly installed) sinks.
    t2vec::obs::metrics::emit();
    t2vec::obs::flush();
}
