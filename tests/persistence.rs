//! Model and dataset persistence across the crate boundaries: save to
//! disk, reload, and verify behavioural equivalence.

use std::fs::File;
use t2vec::prelude::*;
use t2vec_trajgen::io::{read_csv, write_csv};

fn temp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("t2vec-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn model_file_roundtrip() {
    let mut rng = det_rng(91);
    let city = City::tiny(&mut rng);
    let data = DatasetBuilder::new(&city)
        .trips(60)
        .min_len(6)
        .build(&mut rng);
    let mut config = T2VecConfig::tiny();
    config.max_epochs = 2;
    let model = T2Vec::train(&config, &data.train, &mut rng).expect("training failed");

    let path = temp_path("model.json");
    model.save(File::create(&path).unwrap()).unwrap();
    let loaded = T2Vec::load(File::open(&path).unwrap()).unwrap();
    std::fs::remove_file(&path).ok();

    for trip in data.test.iter().take(5) {
        assert_eq!(model.encode(&trip.points), loaded.encode(&trip.points));
    }
    assert_eq!(model.repr_dim(), loaded.repr_dim());
    assert_eq!(model.vocab().size(), loaded.vocab().size());
}

#[test]
fn load_rejects_garbage() {
    let err = T2Vec::load("not json at all".as_bytes()).unwrap_err();
    assert!(matches!(err, t2vec_core::T2VecError::Serde(_)));
}

#[test]
fn trajectory_csv_file_roundtrip() {
    let mut rng = det_rng(92);
    let city = City::tiny(&mut rng);
    let data = DatasetBuilder::new(&city)
        .trips(20)
        .min_len(5)
        .build(&mut rng);

    let path = temp_path("trips.csv");
    write_csv(File::create(&path).unwrap(), &data.train).unwrap();
    let back = read_csv(File::open(&path).unwrap()).unwrap();
    std::fs::remove_file(&path).ok();

    assert_eq!(back.len(), data.train.len());
    for (a, b) in data.train.iter().zip(&back) {
        assert_eq!(a.start, b.start);
        assert_eq!(a.points.len(), b.points.len());
        for (p, q) in a.points.iter().zip(&b.points) {
            assert!((p.x - q.x).abs() < 1e-9);
            assert!((p.y - q.y).abs() < 1e-9);
        }
    }
}

#[test]
fn saved_model_is_valid_json_with_expected_structure() {
    let mut rng = det_rng(93);
    let city = City::tiny(&mut rng);
    let data = DatasetBuilder::new(&city)
        .trips(40)
        .min_len(5)
        .build(&mut rng);
    let mut config = T2VecConfig::tiny();
    config.max_epochs = 1;
    let model = T2Vec::train(&config, &data.train, &mut rng).expect("training failed");

    let mut buf = Vec::new();
    model.save(&mut buf).unwrap();
    let value: serde_json::Value = serde_json::from_slice(&buf).unwrap();
    assert!(value.get("config").is_some());
    assert!(value.get("vocab").is_some());
    assert!(value.get("model").is_some());
}
