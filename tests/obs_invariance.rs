//! The observability determinism invariant, enforced end to end (see
//! `crates/obs`): enabling or disabling tracing/metrics at any level and
//! any thread count never changes a single byte of the canonical
//! experiment report or of a checkpoint file. Wall-clock time may flow
//! into the event stream only.
//!
//! The harness matrix here is (obs off, obs trace + JSONL + memory
//! sink) × (1, 4 worker threads); every cell must be byte-identical to
//! the checked-in `GOLDEN_EXP.json` (the same file
//! `tests/paper_experiments.rs` gates with observability off).

use std::fs;
use std::path::Path;
use std::sync::{Arc, Mutex};
use t2vec_core::checkpoint::CheckpointStore;
use t2vec_core::{T2VecConfig, Trainer};
use t2vec_eval::harness::{self, HarnessConfig};
use t2vec_obs::{self as obs, EventKind, Filter, JsonlSink, MemorySink, Sink};
use t2vec_tensor::parallel;
use t2vec_tensor::rng::det_rng;
use t2vec_trajgen::city::City;
use t2vec_trajgen::dataset::{Dataset, DatasetBuilder};

/// The obs configuration is process-global; tests in this binary must
/// not reconfigure it concurrently.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn obs_off() {
    obs::set_sinks(Vec::new());
    obs::set_filter(Filter::off());
}

fn golden() -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("GOLDEN_EXP.json");
    fs::read_to_string(&path)
        .expect("read GOLDEN_EXP.json")
        .trim_end()
        .to_string()
}

#[test]
fn harness_report_is_byte_identical_across_obs_and_threads() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = HarnessConfig::tiny();
    let golden = golden();
    let jsonl_path = Path::new(env!("CARGO_TARGET_TMPDIR")).join("obs_invariance.jsonl");
    let memory = Arc::new(MemorySink::new());

    for (label, traced) in [("off", false), ("trace", true)] {
        for threads in [1usize, 4] {
            if traced {
                obs::set_filter(Filter::parse("trace"));
                let jsonl: Arc<dyn Sink> =
                    Arc::new(JsonlSink::create(&jsonl_path).expect("create JSONL sink"));
                obs::set_sinks(vec![jsonl, memory.clone()]);
            } else {
                obs_off();
            }
            parallel::set_threads(threads);
            let report = harness::run(&cfg);
            obs_off();
            assert_eq!(
                report.to_canonical_json(),
                golden,
                "canonical report diverged from GOLDEN_EXP.json at obs={label}, {threads} threads"
            );
        }
    }
    parallel::set_threads(1);

    // The traced runs must actually have observed something — an empty
    // event stream would make the byte-identity above vacuous.
    let events = memory.take();
    assert!(
        events.iter().any(|e| {
            e.kind == EventKind::SpanExit && e.target == "eval.harness" && e.elapsed_ns.is_some()
        }),
        "memory sink saw no eval.harness span exits"
    );
    assert!(
        events
            .iter()
            .any(|e| e.kind == EventKind::SpanExit && e.message == "epoch"),
        "memory sink saw no trainer epoch spans"
    );
    assert!(
        obs::metrics::counter("tensor.matmul.macs").get() > 0,
        "matmul MAC counter never moved during a traced training run"
    );

    // Every JSONL line must be well-formed JSON (the file holds the last
    // traced run; per-line flushing guarantees it is complete).
    let jsonl = fs::read_to_string(&jsonl_path).expect("read JSONL output");
    assert!(!jsonl.is_empty(), "JSONL sink wrote nothing");
    for (i, line) in jsonl.lines().enumerate() {
        serde_json::from_str::<serde_json::Value>(line)
            .unwrap_or_else(|e| panic!("JSONL line {} is not valid JSON: {e}\n{line}", i + 1));
    }
}

fn tiny_dataset(seed: u64) -> Dataset {
    let mut rng = det_rng(seed);
    let city = City::tiny(&mut rng);
    DatasetBuilder::new(&city)
        .trips(40)
        .min_len(6)
        .build(&mut rng)
}

fn train_and_checkpoint(dir: &Path) -> Vec<u8> {
    let mut config = T2VecConfig::tiny();
    config.max_epochs = 2;
    let ds = tiny_dataset(21);
    let store = CheckpointStore::open(dir, 2).expect("open store");
    let mut trainer = Trainer::new(&config, &ds.train, &ds.val, 33).expect("trainer setup");
    while trainer.step_epoch().is_some() {
        store.save(&trainer.checkpoint()).expect("save checkpoint");
    }
    let files = store.checkpoint_files();
    let (last, _) = files.last().expect("at least one checkpoint");
    fs::read(last).expect("read checkpoint bytes")
}

#[test]
fn checkpoint_bytes_are_identical_with_obs_at_trace() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let tmp = Path::new(env!("CARGO_TARGET_TMPDIR"));

    obs_off();
    let baseline = train_and_checkpoint(&tmp.join("ckpt-obs-off"));

    obs::set_filter(Filter::parse("trace"));
    obs::set_sinks(vec![Arc::new(MemorySink::new())]);
    let traced = train_and_checkpoint(&tmp.join("ckpt-obs-trace"));
    obs_off();

    assert_eq!(
        baseline, traced,
        "checkpoint bytes changed when observability was enabled at trace"
    );
}
