//! # t2vec — deep representation learning for trajectory similarity
//!
//! A pure-Rust reproduction of *Li et al., "Deep Representation Learning
//! for Trajectory Similarity Computation", ICDE 2018*.
//!
//! This meta-crate re-exports the whole workspace:
//!
//! * [`tensor`] — dense matrices, reverse-mode autodiff, Adam.
//! * [`spatial`] — grid cells, hot-cell vocabularies, trajectory transforms.
//! * [`trajgen`] — a synthetic city simulator standing in for the paper's
//!   Porto/Harbin taxi datasets.
//! * [`distance`] — the pairwise point-matching baselines (DTW, ERP, EDR,
//!   LCSS, EDwP, CMS, discrete Fréchet).
//! * [`nn`] — GRU seq2seq, spatial-proximity losses L1/L2/L3, skip-gram
//!   cell pre-training.
//! * [`core`] — the t2vec model: training pipeline, encoder, vector
//!   indexes (brute force and LSH), k-means clustering.
//! * [`serve`] — the concurrent similarity service: sharded embedding
//!   store, admission-batched encoding, crash-safe snapshots.
//! * [`eval`] — metrics and the runners that regenerate every table and
//!   figure of the paper.
//! * [`obs`] — structured tracing, metrics and leveled logging with a
//!   hard determinism invariant (observability never changes results).
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs`; abridged:
//!
//! ```no_run
//! use t2vec::prelude::*;
//!
//! let mut rng = det_rng(7);
//! let city = City::porto_like(&mut rng);
//! let data = DatasetBuilder::new(&city).trips(2_000).build(&mut rng);
//! let config = T2VecConfig::tiny();
//! let model = T2Vec::train(&config, &data.train, &mut rng).unwrap();
//! let v = model.encode(&data.test[0].points);
//! println!("embedding: {} dims", v.len());
//! ```

pub use t2vec_core as core;
pub use t2vec_distance as distance;
pub use t2vec_eval as eval;
pub use t2vec_nn as nn;
pub use t2vec_obs as obs;
pub use t2vec_serve as serve;
pub use t2vec_spatial as spatial;
pub use t2vec_tensor as tensor;
pub use t2vec_trajgen as trajgen;

/// Convenience re-exports covering the common workflow: generate data,
/// train, encode, search.
pub mod prelude {
    pub use t2vec_core::{
        ann::{IvfConfig, IvfIndex, ScalarQuantizer},
        index::{BruteForceIndex, LshIndex, VectorIndex},
        kmeans::{kmeans, KMeansResult},
        Checkpoint, CheckpointStore, T2Vec, T2VecConfig, TrainReport, Trainer,
    };
    pub use t2vec_distance::{
        cms::Cms, dtw::Dtw, edr::Edr, edwp::Edwp, erp::Erp, frechet::DiscreteFrechet, lcss::Lcss,
        TrajDistance,
    };
    pub use t2vec_eval::metrics::{mean_rank, precision_at_k};
    pub use t2vec_serve::{
        AnnConfig, EmbeddingStore, QueryExplain, ServeConfig, SimilarityService,
    };
    pub use t2vec_spatial::{
        grid::Grid,
        point::{BBox, Point},
        transform::{distort, downsample},
        vocab::Vocab,
    };
    pub use t2vec_tensor::rng::det_rng;
    pub use t2vec_trajgen::{city::City, dataset::DatasetBuilder, Trajectory};
}
