//! The `t2vec` command-line tool: generate data, train models, encode
//! trajectories and run k-nearest-trajectory search from the shell.
//!
//! ```text
//! t2vec generate --city porto --trips 500 --out trips.csv [--seed 7]
//! t2vec train    --data trips.csv --preset tiny|small|paper --out model.json [--seed 7]
//! t2vec encode   --model model.json --data trips.csv --out vectors.json
//! t2vec knn      --model model.json --db trips.csv --query trips.csv --k 10 [--lsh]
//! t2vec loadgen  --model model.json --data trips.csv [--ops N] [--read-frac F]
//!                [--workers N] [--k N] [--shards N] [--out report.json]
//! t2vec stats    --data trips.csv
//! ```
//!
//! Trajectory CSV format: `trip_id,start,x,y` with one sample point per
//! line, coordinates in meters in a local plane (project lon/lat with
//! `GeoPoint::project` first).
//!
//! Observability: `--log-level SPEC` / `--metrics-out FILE` (or the
//! `T2VEC_LOG` / `T2VEC_METRICS_OUT` environment variables) control the
//! structured event stream; `--quiet` silences the per-epoch training
//! heartbeat, `--progress` keeps it even under `--quiet`'s log level.

// Binaries may print; the workspace-wide clippy.toml ban targets
// library crates (diagnostics there must go through t2vec-obs).
#![allow(clippy::disallowed_macros)]

use rand::RngExt;
use std::fs::File;
use std::process::ExitCode;
use t2vec::prelude::*;
use t2vec_trajgen::io::{read_csv, write_csv};
use t2vec_trajgen::Trajectory;

struct Opts {
    flags: std::collections::HashMap<String, String>,
}

impl Opts {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut flags = std::collections::HashMap::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let Some(name) = a.strip_prefix("--") else {
                return Err(format!("unexpected argument '{a}'"));
            };
            if name == "lsh" || name == "resume" || name == "quiet" || name == "progress" {
                flags.insert(name.to_string(), "true".to_string());
                continue;
            }
            let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
            flags.insert(name.to_string(), value.clone());
        }
        Ok(Self { flags })
    }

    fn get(&self, name: &str) -> Result<&str, String> {
        self.flags
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| format!("missing --{name}"))
    }

    fn get_or(&self, name: &str, default: &str) -> String {
        self.flags
            .get(name)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }
}

fn usage() -> &'static str {
    "usage: t2vec <generate|train|encode|knn|loadgen|stats> [--flags]\n\
     \n  generate --city porto|harbin|tiny --trips N --out FILE [--seed N] [--min-len N]\
     \n  train    --data FILE --out FILE [--preset tiny|small|paper] [--seed N]\
     \n           [--checkpoint-dir DIR [--checkpoint-every N] [--keep K] [--resume]]\
     \n  encode   --model FILE --data FILE --out FILE\
     \n  knn      --model FILE --db FILE --query FILE [--k N] [--lsh]\
     \n  loadgen  --model FILE --data FILE [--ops N] [--read-frac F] [--workers N]\
     \n           [--k N] [--shards N] [--seed N] [--out FILE]\
     \n  stats    --data FILE\
     \n\
     \n  global:  [--log-level SPEC] [--metrics-out FILE] [--quiet] [--progress]\
     \n           SPEC is like T2VEC_LOG: error|warn|info|debug|trace or\
     \n           target=level directives, e.g. 'info,nn.train=debug'"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let opts = match Opts::parse(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    init_obs(&opts);
    let result = match cmd.as_str() {
        "generate" => generate(&opts),
        "train" => train(&opts),
        "encode" => encode(&opts),
        "knn" => knn(&opts),
        "loadgen" => loadgen(&opts),
        "stats" => stats(&opts),
        other => Err(format!("unknown command '{other}'\n{}", usage())),
    };
    t2vec::obs::metrics::emit();
    t2vec::obs::flush();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Installs the observability pipeline from flags + environment. Flags
/// win over environment variables; both feed the same
/// `t2vec_obs::init_from_env` path so CLI runs and library consumers
/// behave identically.
fn init_obs(opts: &Opts) {
    if let Some(spec) = opts.flags.get("log-level") {
        std::env::set_var("T2VEC_LOG", spec);
    }
    if let Some(path) = opts.flags.get("metrics-out") {
        std::env::set_var("T2VEC_METRICS_OUT", path);
    }
    let quiet = opts.flags.contains_key("quiet");
    let progress = opts.flags.contains_key("progress");
    // `--quiet` drops the default to warnings; `--progress` re-opens
    // the cli.train heartbeat target on top of that.
    let default_spec = match (quiet, progress) {
        (true, true) => "warn,cli.train=info",
        (true, false) => "warn",
        _ => "info",
    };
    t2vec::obs::init_from_env(default_spec);
}

fn load_trajectories(path: &str) -> Result<Vec<Trajectory>, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    read_csv(file).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn generate(opts: &Opts) -> Result<(), String> {
    let seed: u64 = opts.get_or("seed", "7").parse().map_err(|_| "bad --seed")?;
    let trips: usize = opts
        .get_or("trips", "200")
        .parse()
        .map_err(|_| "bad --trips")?;
    let min_len: usize = opts
        .get_or("min-len", "8")
        .parse()
        .map_err(|_| "bad --min-len")?;
    let out = opts.get("out")?;
    let mut rng = det_rng(seed);
    let city = match opts.get_or("city", "porto").as_str() {
        "porto" => City::porto_like(&mut rng),
        "harbin" => City::harbin_like(&mut rng),
        "tiny" => City::tiny(&mut rng),
        other => return Err(format!("unknown city '{other}'")),
    };
    let ds = DatasetBuilder::new(&city)
        .trips(trips)
        .min_len(min_len)
        .build(&mut rng);
    let all: Vec<Trajectory> = ds.all().cloned().collect();
    let file = File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    write_csv(file, &all).map_err(|e| e.to_string())?;
    let s = ds.stats();
    println!(
        "wrote {} trips / {} points (mean length {:.1}) to {out}",
        s.num_trips, s.num_points, s.mean_length
    );
    Ok(())
}

fn train(opts: &Opts) -> Result<(), String> {
    let seed: u64 = opts.get_or("seed", "7").parse().map_err(|_| "bad --seed")?;
    let data = load_trajectories(opts.get("data")?)?;
    let out = opts.get("out")?;
    let config = match opts.get_or("preset", "small").as_str() {
        "tiny" => T2VecConfig::tiny(),
        "small" => T2VecConfig::small(),
        "paper" => T2VecConfig::paper_default(),
        other => return Err(format!("unknown preset '{other}'")),
    };
    let every: usize = opts
        .get_or("checkpoint-every", "1")
        .parse::<usize>()
        .map_err(|_| "bad --checkpoint-every")?
        .max(1);
    let keep: usize = opts.get_or("keep", "3").parse().map_err(|_| "bad --keep")?;
    let resume = opts.flags.contains_key("resume");
    let store = match opts.flags.get("checkpoint-dir") {
        Some(dir) => Some(CheckpointStore::open(dir, keep).map_err(|e| e.to_string())?),
        None if resume => return Err("--resume needs --checkpoint-dir".into()),
        None => None,
    };
    let split = data.len().saturating_sub((data.len() / 10).max(1)).max(1);
    let (tr, val) = data.split_at(split.min(data.len()));
    // Derive the setup seed exactly as `T2Vec::train_with_report` does,
    // so a run with checkpointing off is bit-identical to one with it on.
    let setup_seed: u64 = det_rng(seed).random();
    let mut trainer = if resume {
        let (trainer, notes) =
            Trainer::resume_from(&config, tr, val, setup_seed, store.as_ref().unwrap())
                .map_err(|e| e.to_string())?;
        for note in notes {
            eprintln!("resume: {note}");
        }
        trainer
    } else {
        Trainer::new(&config, tr, val, setup_seed).map_err(|e| e.to_string())?
    };
    while let Some(stats) = trainer.step_epoch() {
        // One-line heartbeat per epoch (suppress with --quiet). All the
        // numbers come from the trainer's observability surface; none of
        // this can perturb the training computation.
        if let Some(tp) = trainer.throughput().last() {
            let done = trainer.throughput().len();
            let mean_secs =
                trainer.throughput().iter().map(|t| t.seconds).sum::<f64>() / done as f64;
            let remaining = trainer.max_epochs().saturating_sub(trainer.epochs_done());
            t2vec::obs::info!(target: "cli.train",
                "epoch {:>3}/{}  train {:.4}  val {:.4}  {:.0} tok/s  eta {:.0}s",
                stats.epoch + 1,
                trainer.max_epochs(),
                stats.train_loss,
                stats.val_loss,
                tp.tokens_per_sec(),
                mean_secs * remaining as f64
            );
        }
        if let Some(store) = &store {
            if trainer.epochs_done() % every == 0 {
                let path = store
                    .save(&trainer.checkpoint())
                    .map_err(|e| e.to_string())?;
                eprintln!(
                    "checkpoint: epoch {} -> {}",
                    trainer.epochs_done(),
                    path.display()
                );
            }
        }
    }
    let (model, report) = trainer.finish();
    let file = File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    model.save(file).map_err(|e| e.to_string())?;
    println!(
        "trained on {} trips ({} pairs, {} hot cells) in {:.1}s over {} epochs; model -> {out}",
        tr.len(),
        report.num_pairs,
        report.vocab_size,
        report.train_seconds,
        report.epochs
    );
    Ok(())
}

fn encode(opts: &Opts) -> Result<(), String> {
    let model = T2Vec::load(File::open(opts.get("model")?).map_err(|e| e.to_string())?)
        .map_err(|e| e.to_string())?;
    let data = load_trajectories(opts.get("data")?)?;
    let out = opts.get("out")?;
    let points: Vec<Vec<_>> = data.iter().map(|t| t.points.clone()).collect();
    let t0 = std::time::Instant::now();
    let vectors = model.encode_batch(&points);
    let file = File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    serde_json::to_writer(file, &vectors).map_err(|e| e.to_string())?;
    println!(
        "encoded {} trajectories ({} dims) in {:.1} ms -> {out}",
        vectors.len(),
        model.repr_dim(),
        t0.elapsed().as_secs_f64() * 1e3
    );
    Ok(())
}

fn knn(opts: &Opts) -> Result<(), String> {
    let model = T2Vec::load(File::open(opts.get("model")?).map_err(|e| e.to_string())?)
        .map_err(|e| e.to_string())?;
    let db = load_trajectories(opts.get("db")?)?;
    let queries = load_trajectories(opts.get("query")?)?;
    let k: usize = opts.get_or("k", "10").parse().map_err(|_| "bad --k")?;
    let use_lsh = opts.flags.contains_key("lsh");

    let db_points: Vec<Vec<_>> = db.iter().map(|t| t.points.clone()).collect();
    let vectors = model.encode_batch(&db_points);
    let mut rng = det_rng(1);
    let index: Box<dyn VectorIndex> = if use_lsh {
        let mut idx = LshIndex::new(model.repr_dim(), 10, 8, &mut rng);
        for v in vectors {
            idx.add(v);
        }
        Box::new(idx)
    } else {
        let mut idx = BruteForceIndex::new();
        for v in vectors {
            idx.add(v);
        }
        Box::new(idx)
    };
    for (qi, q) in queries.iter().enumerate() {
        let qv = model.encode(&q.points);
        let hits = index.knn(&qv, k);
        let rendered: Vec<String> = hits.iter().map(|(id, d)| format!("{id}:{d:.3}")).collect();
        println!("query {qi}: {}", rendered.join(" "));
    }
    Ok(())
}

/// Stands up an in-memory [`SimilarityService`] around a trained model,
/// preloads it with the trajectories of `--data`, and drives it with
/// the mixed read/write load generator, printing p50/p99/QPS (and
/// writing the JSON report when `--out` is given).
fn loadgen(opts: &Opts) -> Result<(), String> {
    use t2vec::serve::{loadgen as lg, LoadgenConfig, ServeConfig};

    let model = T2Vec::load(File::open(opts.get("model")?).map_err(|e| e.to_string())?)
        .map_err(|e| e.to_string())?;
    let data = load_trajectories(opts.get("data")?)?;
    if data.is_empty() {
        return Err("loadgen needs a non-empty --data file".into());
    }
    let ops: usize = opts.get_or("ops", "400").parse().map_err(|_| "bad --ops")?;
    let read_fraction: f64 = opts
        .get_or("read-frac", "0.9")
        .parse()
        .map_err(|_| "bad --read-frac")?;
    let workers: usize = opts
        .get_or("workers", "4")
        .parse::<usize>()
        .map_err(|_| "bad --workers")?
        .max(1);
    let k: usize = opts.get_or("k", "10").parse().map_err(|_| "bad --k")?;
    let shards: usize = opts
        .get_or("shards", "8")
        .parse()
        .map_err(|_| "bad --shards")?;
    let seed: u64 = opts.get_or("seed", "7").parse().map_err(|_| "bad --seed")?;

    let config = ServeConfig {
        shards,
        ..ServeConfig::default()
    };
    let service = SimilarityService::new(std::sync::Arc::new(model), config);
    let pool: Vec<Vec<Point>> = data.iter().map(|t| t.points.clone()).collect();
    for (i, t) in pool.iter().enumerate() {
        service.insert(i as u64, t).map_err(|e| e.to_string())?;
    }
    let cfg = LoadgenConfig {
        workers,
        ops_per_worker: (ops / workers).max(1),
        read_fraction,
        k,
        seed,
        id_base: 1 << 32,
    };
    let report = lg::run(&service, &pool, &cfg);
    println!(
        "{} ops ({} reads / {} writes) over {} workers in {:.2}s: {:.0} ops/s",
        report.ops, report.reads, report.writes, report.workers, report.elapsed_s, report.qps
    );
    println!(
        "read  p50 {:.0} us | p99 {:.0} us | max {:.0} us",
        report.read_latency.p50_us, report.read_latency.p99_us, report.read_latency.max_us
    );
    println!(
        "write p50 {:.0} us | p99 {:.0} us | max {:.0} us",
        report.write_latency.p50_us, report.write_latency.p99_us, report.write_latency.max_us
    );
    println!("store holds {} entries", report.store_len_end);
    if let Some(out) = opts.flags.get("out") {
        let file = File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
        serde_json::to_writer(file, &report).map_err(|e| e.to_string())?;
        println!("report -> {out}");
    }
    Ok(())
}

fn stats(opts: &Opts) -> Result<(), String> {
    let data = load_trajectories(opts.get("data")?)?;
    let points: usize = data.iter().map(Trajectory::len).sum();
    let mean = if data.is_empty() {
        0.0
    } else {
        points as f64 / data.len() as f64
    };
    println!(
        "#trips: {}\n#points: {points}\nmean length: {mean:.2}",
        data.len()
    );
    Ok(())
}
