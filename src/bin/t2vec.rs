//! The `t2vec` command-line tool: generate data, train models, encode
//! trajectories and run k-nearest-trajectory search from the shell.
//!
//! ```text
//! t2vec generate --city porto --trips 500 --out trips.csv [--seed 7]
//! t2vec train    --data trips.csv --preset tiny|small|paper --out model.json [--seed 7]
//! t2vec encode   --model model.json --data trips.csv --out vectors.json
//! t2vec knn      --model model.json --db trips.csv --query trips.csv --k 10 [--lsh]
//! t2vec loadgen  --model model.json --data trips.csv [--ops N] [--read-frac F]
//!                [--workers N] [--k N] [--shards N] [--out report.json]
//!                [--trace-out trace.jsonl]
//! t2vec obs-dump --trace trace.jsonl [--check]
//! t2vec stats    --data trips.csv
//! ```
//!
//! Trajectory CSV format: `trip_id,start,x,y` with one sample point per
//! line, coordinates in meters in a local plane (project lon/lat with
//! `GeoPoint::project` first).
//!
//! Observability: `--log-level SPEC` / `--metrics-out FILE` (or the
//! `T2VEC_LOG` / `T2VEC_METRICS_OUT` environment variables) control the
//! structured event stream; `--quiet` silences the per-epoch training
//! heartbeat, `--progress` keeps it even under `--quiet`'s log level.
//!
//! Performance knobs: `T2VEC_THREADS` caps the worker-thread count;
//! `T2VEC_TRAIN_PATH=tape|fused` selects the training gradient
//! implementation (default `fused`, the tape-free hand-derived BPTT —
//! both paths produce bitwise-identical models).

// Binaries may print; the workspace-wide clippy.toml ban targets
// library crates (diagnostics there must go through t2vec-obs).
#![allow(clippy::disallowed_macros)]

use rand::RngExt;
use std::fs::File;
use std::process::ExitCode;
use t2vec::prelude::*;
use t2vec_trajgen::io::{read_csv, write_csv};
use t2vec_trajgen::Trajectory;

struct Opts {
    flags: std::collections::HashMap<String, String>,
}

impl Opts {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut flags = std::collections::HashMap::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let Some(name) = a.strip_prefix("--") else {
                return Err(format!("unexpected argument '{a}'"));
            };
            if name == "lsh"
                || name == "resume"
                || name == "quiet"
                || name == "progress"
                || name == "check"
            {
                flags.insert(name.to_string(), "true".to_string());
                continue;
            }
            let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
            flags.insert(name.to_string(), value.clone());
        }
        Ok(Self { flags })
    }

    fn get(&self, name: &str) -> Result<&str, String> {
        self.flags
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| format!("missing --{name}"))
    }

    fn get_or(&self, name: &str, default: &str) -> String {
        self.flags
            .get(name)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }
}

fn usage() -> &'static str {
    "usage: t2vec <generate|train|encode|knn|loadgen|obs-dump|stats> [--flags]\n\
     \n  generate --city porto|harbin|tiny --trips N --out FILE [--seed N] [--min-len N]\
     \n  train    --data FILE --out FILE [--preset tiny|small|paper] [--seed N]\
     \n           [--checkpoint-dir DIR [--checkpoint-every N] [--keep K] [--resume]]\
     \n  encode   --model FILE --data FILE --out FILE\
     \n  knn      --model FILE --db FILE --query FILE [--k N] [--lsh]\
     \n  loadgen  --model FILE --data FILE [--ops N] [--read-frac F] [--workers N]\
     \n           [--k N] [--shards N] [--seed N] [--out FILE] [--trace-out FILE]\
     \n  obs-dump --trace FILE [--check]\
     \n  stats    --data FILE\
     \n\
     \n  global:  [--log-level SPEC] [--metrics-out FILE] [--quiet] [--progress]\
     \n           [--flight N] [--flight-dump FILE]\
     \n           SPEC is like T2VEC_LOG: error|warn|info|debug|trace or\
     \n           target=level directives, e.g. 'info,nn.train=debug'"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let opts = match Opts::parse(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    init_obs(&opts);
    let result = match cmd.as_str() {
        "generate" => generate(&opts),
        "train" => train(&opts),
        "encode" => encode(&opts),
        "knn" => knn(&opts),
        "loadgen" => loadgen(&opts),
        "obs-dump" => obs_dump(&opts),
        "stats" => stats(&opts),
        other => Err(format!("unknown command '{other}'\n{}", usage())),
    };
    t2vec::obs::metrics::emit();
    t2vec::obs::flush();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Installs the observability pipeline from flags + environment. Flags
/// win over environment variables; both feed the same
/// `t2vec_obs::init_from_env` path so CLI runs and library consumers
/// behave identically.
fn init_obs(opts: &Opts) {
    if let Some(spec) = opts.flags.get("log-level") {
        std::env::set_var("T2VEC_LOG", spec);
    }
    if let Some(path) = opts.flags.get("metrics-out") {
        std::env::set_var("T2VEC_METRICS_OUT", path);
    }
    // `--trace-out` is the tracing-flavoured spelling of the same JSONL
    // sink (the sink receives every record: spans, events, metrics);
    // installing it raises the filter to debug so span records flow.
    if let Some(path) = opts.flags.get("trace-out") {
        std::env::set_var("T2VEC_METRICS_OUT", path);
    }
    if let Some(cap) = opts.flags.get("flight") {
        std::env::set_var("T2VEC_FLIGHT", cap);
    }
    if let Some(path) = opts.flags.get("flight-dump") {
        std::env::set_var("T2VEC_FLIGHT_DUMP", path);
    }
    let quiet = opts.flags.contains_key("quiet");
    let progress = opts.flags.contains_key("progress");
    // `--quiet` drops the default to warnings; `--progress` re-opens
    // the cli.train heartbeat target on top of that.
    let default_spec = match (quiet, progress) {
        (true, true) => "warn,cli.train=info",
        (true, false) => "warn",
        _ => "info",
    };
    t2vec::obs::init_from_env(default_spec);
}

fn load_trajectories(path: &str) -> Result<Vec<Trajectory>, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    read_csv(file).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn generate(opts: &Opts) -> Result<(), String> {
    let seed: u64 = opts.get_or("seed", "7").parse().map_err(|_| "bad --seed")?;
    let trips: usize = opts
        .get_or("trips", "200")
        .parse()
        .map_err(|_| "bad --trips")?;
    let min_len: usize = opts
        .get_or("min-len", "8")
        .parse()
        .map_err(|_| "bad --min-len")?;
    let out = opts.get("out")?;
    let mut rng = det_rng(seed);
    let city = match opts.get_or("city", "porto").as_str() {
        "porto" => City::porto_like(&mut rng),
        "harbin" => City::harbin_like(&mut rng),
        "tiny" => City::tiny(&mut rng),
        other => return Err(format!("unknown city '{other}'")),
    };
    let ds = DatasetBuilder::new(&city)
        .trips(trips)
        .min_len(min_len)
        .build(&mut rng);
    let all: Vec<Trajectory> = ds.all().cloned().collect();
    let file = File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    write_csv(file, &all).map_err(|e| e.to_string())?;
    let s = ds.stats();
    println!(
        "wrote {} trips / {} points (mean length {:.1}) to {out}",
        s.num_trips, s.num_points, s.mean_length
    );
    Ok(())
}

fn train(opts: &Opts) -> Result<(), String> {
    let seed: u64 = opts.get_or("seed", "7").parse().map_err(|_| "bad --seed")?;
    let data = load_trajectories(opts.get("data")?)?;
    let out = opts.get("out")?;
    let config = match opts.get_or("preset", "small").as_str() {
        "tiny" => T2VecConfig::tiny(),
        "small" => T2VecConfig::small(),
        "paper" => T2VecConfig::paper_default(),
        other => return Err(format!("unknown preset '{other}'")),
    };
    let every: usize = opts
        .get_or("checkpoint-every", "1")
        .parse::<usize>()
        .map_err(|_| "bad --checkpoint-every")?
        .max(1);
    let keep: usize = opts.get_or("keep", "3").parse().map_err(|_| "bad --keep")?;
    let resume = opts.flags.contains_key("resume");
    let store = match opts.flags.get("checkpoint-dir") {
        Some(dir) => Some(CheckpointStore::open(dir, keep).map_err(|e| e.to_string())?),
        None if resume => return Err("--resume needs --checkpoint-dir".into()),
        None => None,
    };
    let split = data.len().saturating_sub((data.len() / 10).max(1)).max(1);
    let (tr, val) = data.split_at(split.min(data.len()));
    // Derive the setup seed exactly as `T2Vec::train_with_report` does,
    // so a run with checkpointing off is bit-identical to one with it on.
    let setup_seed: u64 = det_rng(seed).random();
    let mut trainer = if resume {
        let (trainer, notes) =
            Trainer::resume_from(&config, tr, val, setup_seed, store.as_ref().unwrap())
                .map_err(|e| e.to_string())?;
        for note in notes {
            eprintln!("resume: {note}");
        }
        trainer
    } else {
        Trainer::new(&config, tr, val, setup_seed).map_err(|e| e.to_string())?
    };
    while let Some(stats) = trainer.step_epoch() {
        // One-line heartbeat per epoch (suppress with --quiet). All the
        // numbers come from the trainer's observability surface; none of
        // this can perturb the training computation.
        if let Some(tp) = trainer.throughput().last() {
            let done = trainer.throughput().len();
            let mean_secs =
                trainer.throughput().iter().map(|t| t.seconds).sum::<f64>() / done as f64;
            let remaining = trainer.max_epochs().saturating_sub(trainer.epochs_done());
            t2vec::obs::info!(target: "cli.train",
                "epoch {:>3}/{}  train {:.4}  val {:.4}  {:.0} tok/s  eta {:.0}s",
                stats.epoch + 1,
                trainer.max_epochs(),
                stats.train_loss,
                stats.val_loss,
                tp.tokens_per_sec(),
                mean_secs * remaining as f64
            );
        }
        if let Some(store) = &store {
            if trainer.epochs_done() % every == 0 {
                let path = store
                    .save(&trainer.checkpoint())
                    .map_err(|e| e.to_string())?;
                eprintln!(
                    "checkpoint: epoch {} -> {}",
                    trainer.epochs_done(),
                    path.display()
                );
            }
        }
    }
    let (model, report) = trainer.finish();
    let file = File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    model.save(file).map_err(|e| e.to_string())?;
    println!(
        "trained on {} trips ({} pairs, {} hot cells) in {:.1}s over {} epochs; model -> {out}",
        tr.len(),
        report.num_pairs,
        report.vocab_size,
        report.train_seconds,
        report.epochs
    );
    Ok(())
}

fn encode(opts: &Opts) -> Result<(), String> {
    let model = T2Vec::load(File::open(opts.get("model")?).map_err(|e| e.to_string())?)
        .map_err(|e| e.to_string())?;
    let data = load_trajectories(opts.get("data")?)?;
    let out = opts.get("out")?;
    let points: Vec<Vec<_>> = data.iter().map(|t| t.points.clone()).collect();
    let t0 = std::time::Instant::now();
    let vectors = model.encode_batch(&points);
    let file = File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    serde_json::to_writer(file, &vectors).map_err(|e| e.to_string())?;
    println!(
        "encoded {} trajectories ({} dims) in {:.1} ms -> {out}",
        vectors.len(),
        model.repr_dim(),
        t0.elapsed().as_secs_f64() * 1e3
    );
    Ok(())
}

fn knn(opts: &Opts) -> Result<(), String> {
    let model = T2Vec::load(File::open(opts.get("model")?).map_err(|e| e.to_string())?)
        .map_err(|e| e.to_string())?;
    let db = load_trajectories(opts.get("db")?)?;
    let queries = load_trajectories(opts.get("query")?)?;
    let k: usize = opts.get_or("k", "10").parse().map_err(|_| "bad --k")?;
    let use_lsh = opts.flags.contains_key("lsh");

    let db_points: Vec<Vec<_>> = db.iter().map(|t| t.points.clone()).collect();
    let vectors = model.encode_batch(&db_points);
    let mut rng = det_rng(1);
    let index: Box<dyn VectorIndex> = if use_lsh {
        let mut idx = LshIndex::new(model.repr_dim(), 10, 8, &mut rng);
        for v in vectors {
            idx.add(v);
        }
        Box::new(idx)
    } else {
        let mut idx = BruteForceIndex::new();
        for v in vectors {
            idx.add(v);
        }
        Box::new(idx)
    };
    for (qi, q) in queries.iter().enumerate() {
        let qv = model.encode(&q.points);
        let hits = index.knn(&qv, k);
        let rendered: Vec<String> = hits.iter().map(|(id, d)| format!("{id}:{d:.3}")).collect();
        println!("query {qi}: {}", rendered.join(" "));
    }
    Ok(())
}

/// Stands up an in-memory [`SimilarityService`] around a trained model,
/// preloads it with the trajectories of `--data`, and drives it with
/// the mixed read/write load generator, printing p50/p99/QPS (and
/// writing the JSON report when `--out` is given).
fn loadgen(opts: &Opts) -> Result<(), String> {
    use t2vec::serve::{loadgen as lg, LoadgenConfig, ServeConfig};

    let model = T2Vec::load(File::open(opts.get("model")?).map_err(|e| e.to_string())?)
        .map_err(|e| e.to_string())?;
    let data = load_trajectories(opts.get("data")?)?;
    if data.is_empty() {
        return Err("loadgen needs a non-empty --data file".into());
    }
    let ops: usize = opts.get_or("ops", "400").parse().map_err(|_| "bad --ops")?;
    let read_fraction: f64 = opts
        .get_or("read-frac", "0.9")
        .parse()
        .map_err(|_| "bad --read-frac")?;
    let workers: usize = opts
        .get_or("workers", "4")
        .parse::<usize>()
        .map_err(|_| "bad --workers")?
        .max(1);
    let k: usize = opts.get_or("k", "10").parse().map_err(|_| "bad --k")?;
    let shards: usize = opts
        .get_or("shards", "8")
        .parse()
        .map_err(|_| "bad --shards")?;
    let seed: u64 = opts.get_or("seed", "7").parse().map_err(|_| "bad --seed")?;

    let config = ServeConfig {
        shards,
        ..ServeConfig::default()
    };
    let service = SimilarityService::new(std::sync::Arc::new(model), config);
    let pool: Vec<Vec<Point>> = data.iter().map(|t| t.points.clone()).collect();
    for (i, t) in pool.iter().enumerate() {
        service.insert(i as u64, t).map_err(|e| e.to_string())?;
    }
    let cfg = LoadgenConfig {
        workers,
        ops_per_worker: (ops / workers).max(1),
        read_fraction,
        k,
        seed,
        id_base: 1 << 32,
    };
    let report = lg::run(&service, &pool, &cfg);
    println!(
        "{} ops ({} reads / {} writes) over {} workers in {:.2}s: {:.0} ops/s",
        report.ops, report.reads, report.writes, report.workers, report.elapsed_s, report.qps
    );
    println!(
        "read  p50 {:.0} us | p99 {:.0} us | max {:.0} us",
        report.read_latency.p50_us, report.read_latency.p99_us, report.read_latency.max_us
    );
    println!(
        "write p50 {:.0} us | p99 {:.0} us | max {:.0} us",
        report.write_latency.p50_us, report.write_latency.p99_us, report.write_latency.max_us
    );
    println!("store holds {} entries", report.store_len_end);
    if let Some(out) = opts.flags.get("out") {
        let file = File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
        serde_json::to_writer(file, &report).map_err(|e| e.to_string())?;
        println!("report -> {out}");
    }
    Ok(())
}

/// Analyzes a JSONL event stream (`--trace-out` / `T2VEC_METRICS_OUT`
/// traces and flight-recorder dumps share the shape): reconstructs
/// every span tree, reports per-trace completeness, per-span-name
/// latency quantiles and ANN explain records. With `--check`, exits
/// nonzero when any line fails to parse or any trace's tree is
/// incomplete (a referenced parent never seen, or a span never exited).
fn obs_dump(opts: &Opts) -> Result<(), String> {
    use serde_json::Value;
    use std::collections::BTreeMap;
    use t2vec::obs::quantiles::WindowedQuantiles;

    struct SpanRec {
        name: String,
        target: String,
        trace: u64,
        parent: u64,
        entered: bool,
        exited: bool,
        elapsed_ns: Option<u64>,
        members: Vec<u64>,
    }

    fn num(v: Option<&Value>) -> u64 {
        match v {
            Some(Value::UInt(n)) => *n,
            _ => 0,
        }
    }

    let path = opts.get("trace")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;

    let mut spans: BTreeMap<u64, SpanRec> = BTreeMap::new();
    let (mut events, mut metrics, mut bad_lines) = (0usize, 0usize, 0usize);
    let (mut explains, mut explain_ann, mut explain_fallback) = (0usize, 0usize, 0usize);
    for line in text.lines().map(str::trim).filter(|l| !l.is_empty()) {
        let Ok(v) = serde_json::from_str::<Value>(line) else {
            bad_lines += 1;
            continue;
        };
        let kind = v.get("kind").and_then(Value::as_str).unwrap_or("");
        let span = num(v.get("span"));
        match kind {
            "span_enter" | "span_exit" if span != 0 => {
                let rec = spans.entry(span).or_insert_with(|| SpanRec {
                    name: v
                        .get("msg")
                        .and_then(Value::as_str)
                        .unwrap_or("?")
                        .to_string(),
                    target: v
                        .get("target")
                        .and_then(Value::as_str)
                        .unwrap_or("?")
                        .to_string(),
                    trace: num(v.get("trace")),
                    parent: num(v.get("parent")),
                    entered: false,
                    exited: false,
                    elapsed_ns: None,
                    members: Vec::new(),
                });
                if kind == "span_enter" {
                    rec.entered = true;
                    if let Some(Value::Str(m)) = v.get("fields").and_then(|f| f.get("members")) {
                        rec.members = m.split(',').filter_map(|t| t.parse().ok()).collect();
                    }
                } else {
                    rec.exited = true;
                    rec.elapsed_ns = match v.get("elapsed_ns") {
                        Some(Value::UInt(n)) => Some(*n),
                        _ => None,
                    };
                }
            }
            "event" => {
                events += 1;
                if v.get("target").and_then(Value::as_str) == Some("serve.explain") {
                    explains += 1;
                    let field = |k: &str| v.get("fields").and_then(|f| f.get(k)).cloned();
                    if field("ann") == Some(Value::Bool(true)) {
                        explain_ann += 1;
                    }
                    if field("exact_fallback") == Some(Value::Bool(true)) {
                        explain_fallback += 1;
                    }
                }
            }
            "metric" => metrics += 1,
            _ => {}
        }
    }

    // Group spans by trace and check each tree: every parent resolves,
    // every entered span exited. Spans recorded by a *flight dump* may
    // legitimately miss their enter twin (the ring wrapped), so an
    // exit-only span is fine; a dangling parent or an unexited span is
    // not.
    let mut traces: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for (&id, rec) in &spans {
        if rec.trace != 0 {
            traces.entry(rec.trace).or_default().push(id);
        }
    }
    let mut incomplete: Vec<(u64, String)> = Vec::new();
    for (&trace, ids) in &traces {
        let mut reasons = Vec::new();
        for &id in ids {
            let rec = &spans[&id];
            if rec.entered && !rec.exited {
                reasons.push(format!("span {id} ({}) never exited", rec.name));
            }
            if rec.parent != 0 && !spans.contains_key(&rec.parent) {
                reasons.push(format!(
                    "span {id} ({}) references unseen parent {}",
                    rec.name, rec.parent
                ));
            }
        }
        if !reasons.is_empty() {
            incomplete.push((trace, reasons.join("; ")));
        }
    }

    // Roots by name, engine-batch coverage, per-span-name latency
    // quantiles (dogfooding the obs estimator, unwindowed).
    let mut roots: BTreeMap<String, usize> = BTreeMap::new();
    let mut covered: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    let mut engine_batches = 0usize;
    let mut lat: BTreeMap<String, WindowedQuantiles> = BTreeMap::new();
    for rec in spans.values() {
        if rec.parent == 0 {
            *roots
                .entry(format!("{}/{}", rec.target, rec.name))
                .or_default() += 1;
        }
        if !rec.members.is_empty() {
            engine_batches += 1;
            covered.extend(&rec.members);
        }
        if let Some(ns) = rec.elapsed_ns {
            lat.entry(format!("{}/{}", rec.target, rec.name))
                .or_insert_with(WindowedQuantiles::unwindowed)
                .record(ns);
        }
    }

    println!(
        "{} spans over {} traces; {} events ({} explain), {metrics} metric records",
        spans.len(),
        traces.len(),
        events,
        explains
    );
    if explains > 0 {
        println!(
            "explain: {explain_ann} ann / {explain_fallback} exact-fallback / {explains} total"
        );
    }
    for (name, n) in &roots {
        println!("root {name}: {n}");
    }
    if engine_batches > 0 {
        println!(
            "engine batches: {engine_batches}, covering {} request traces",
            covered.len()
        );
    }
    for (name, q) in &lat {
        println!(
            "span {name}: n={} p50={}ns p99={}ns max={}ns",
            q.count(),
            q.quantile(0.50),
            q.quantile(0.99),
            q.max()
        );
    }
    if bad_lines > 0 {
        println!("unparseable lines: {bad_lines}");
    }
    for (trace, why) in incomplete.iter().take(10) {
        println!("incomplete trace {trace}: {why}");
    }
    println!(
        "complete span trees: {}/{}",
        traces.len() - incomplete.len(),
        traces.len()
    );
    if opts.flags.contains_key("check") && (!incomplete.is_empty() || bad_lines > 0) {
        return Err(format!(
            "trace check failed: {} incomplete trace(s), {} unparseable line(s)",
            incomplete.len(),
            bad_lines
        ));
    }
    Ok(())
}

fn stats(opts: &Opts) -> Result<(), String> {
    let data = load_trajectories(opts.get("data")?)?;
    let points: usize = data.iter().map(Trajectory::len).sum();
    let mean = if data.is_empty() {
        0.0
    } else {
        points as f64 / data.len() as f64
    };
    println!(
        "#trips: {}\n#points: {points}\nmean length: {mean:.2}",
        data.len()
    );
    Ok(())
}
